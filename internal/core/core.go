// Package core is the top-level API of the UA-DB library: a database that
// ingests uncertain inputs in any supported model (TI-DBs, x-DBs/BI-DBs,
// C-tables, plain deterministic tables, or pre-encoded UA tables), derives
// the labeling and best-guess world per the schemes of Section 4, and
// answers UA-SQL queries through the rewriting middleware of Section 9.
// Every result row carries a certainty marker; the result as a whole
// sandwiches the certain answers between the c-sound labeling (marked rows)
// and the best-guess world (all rows).
//
// Quick start:
//
//	db := core.New()
//	db.AddXRelation(addresses)           // an x-DB with geocoding choices
//	db.AddDeterministic(lookupTable)     // a clean reference table
//	res, err := db.Query(`SELECT a.id, l.state FROM addr a, loc l WHERE ...`)
//	for _, row := range res.Rows() {
//	    if row.Certain { ... }
//	}
package core

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// DB is an uncertainty-annotated database.
type DB struct {
	front *rewrite.Frontend
	ua    *uadb.Database[int64]
}

// New returns an empty UA-DB.
func New() *DB {
	return &DB{
		front: rewrite.NewFrontend(engine.NewCatalog()),
		ua:    kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat)),
	}
}

func (db *DB) register(rel *uadb.Relation[int64]) {
	db.ua.Put(rel)
	db.front.Enc.Put(rewrite.TableFromUA(rel))
}

// AddXRelation ingests an x-relation (or BI-DB relation): the labeling marks
// single-alternative non-optional x-tuples certain, and the best-guess world
// takes each x-tuple's designated (first or most probable) alternative.
func (db *DB) AddXRelation(x *models.XRelation) {
	db.register(uadb.FromXDB(x))
}

// AddTIRelation ingests a tuple-independent relation: non-optional (P = 1)
// rows are certain; rows with P ≥ 0.5 are in the best-guess world.
func (db *DB) AddTIRelation(r *models.TIRelation) {
	db.register(uadb.FromTIDB(r))
}

// AddCTable ingests a C-table: ground rows with CNF-tautology conditions are
// certain; the best-guess world instantiates each variable with its most
// probable (or first) domain value.
func (db *DB) AddCTable(c *models.CTable) {
	db.register(uadb.FromCTable(c))
}

// AddDeterministic ingests a plain table; every row is certain. The table's
// schema name becomes the relation name.
func (db *DB) AddDeterministic(t *engine.Table) {
	db.front.Enc.Put(rewrite.EncodeDeterministic(t))
	db.front.Raw.Put(t)
	rel := rewrite.RelationFromTable(t)
	db.ua.Put(uadb.New[int64](semiring.Nat, rel, rel))
}

// AddRaw registers a table for use with an IS TI / IS X / IS CTABLE
// annotation in a query (Section 9.2); the metadata columns named in the
// annotation drive the encoding at query time.
func (db *DB) AddRaw(t *engine.Table) {
	db.front.Raw.Put(t)
}

// Row is one result row with its certainty marker.
type Row struct {
	Values  types.Tuple
	Certain bool
}

// Result is a labeled query answer.
type Result struct {
	// Attrs are the user attribute names (without the marker column).
	Attrs []string
	rows  []Row
}

// Rows returns the labeled rows.
func (r *Result) Rows() []Row { return r.rows }

// NumRows returns the row count (equal to best-guess query processing).
func (r *Result) NumRows() int { return len(r.rows) }

// CertainCount returns how many rows are marked certain.
func (r *Result) CertainCount() int {
	n := 0
	for _, row := range r.rows {
		if row.Certain {
			n++
		}
	}
	return n
}

// Query rewrites and evaluates a UA-SQL SELECT (RA⁺: selection, projection,
// join, UNION ALL, plus ORDER BY/LIMIT for presentation). The result is
// c-sound: every row marked certain appears in every possible world.
func (db *DB) Query(sql string) (*Result, error) {
	qres, err := db.front.Query(context.Background(), sql, db.front.Opts)
	if err != nil {
		return nil, err
	}
	tbl := engine.ResultTable(qres)
	n := tbl.Schema.Arity()
	if n < 1 {
		return nil, fmt.Errorf("core: result has no certainty column")
	}
	res := &Result{Attrs: append([]string{}, tbl.Schema.Attrs[:n-1]...)}
	for _, row := range tbl.Rows {
		res.rows = append(res.rows, Row{
			Values:  types.Tuple(row[:n-1]).Clone(),
			Certain: row[n-1].Int() == 1,
		})
	}
	return res, nil
}

// BestGuess runs the query as plain best-guess query processing (no
// labels), for comparison and for callers that only need the classic
// behaviour.
func (db *DB) BestGuess(sql string) (*engine.Table, error) {
	cat := rewrite.DetCatalog(db.ua)
	plan, err := engine.NewPlanner(cat).PlanSQL(sql)
	if err != nil {
		return nil, err
	}
	res, err := engine.NewSession(cat, physical.Options{}).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

// Relation exposes the underlying UA-relation of a registered table (nil if
// absent) for annotation-level processing with the kdb/uadb packages.
func (db *DB) Relation(name string) *uadb.Relation[int64] {
	return db.ua.Get(name)
}
