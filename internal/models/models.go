// Package models implements the three compact incomplete/probabilistic data
// models the paper defines labeling schemes for (Section 4): tuple-
// independent databases (TI-DBs), block-independent x-DBs/BI-DBs, and
// C-tables/PC-tables. For each model it provides
//
//   - the labeling scheme (LabelTIDB c-correct, LabelXDB c-correct,
//     LabelCTable c-sound) producing an N-labeling whose annotation is a
//     lower bound on the certain multiplicity,
//   - best-guess-world extraction (Section 4.2), and
//   - possible-world enumeration (exponential; used as ground truth by tests
//     and experiments, never by the UA-DB fast path).
//
// Labelings and worlds are produced under bag semantics (semiring N); set
// semantics versions are derived through the support homomorphism N → B.
package models

import (
	"repro/internal/kdb"
	"repro/internal/semiring"
)

// ToSet converts an N-relation to its B support: h(k) = (k > 0), the
// semiring homomorphism of Example 6.
func ToSet(r *kdb.Relation[int64]) *kdb.Relation[bool] {
	return kdb.MapAnnotations(r, semiring.Bool, func(k int64) bool { return k > 0 })
}

// ToSetDB converts an N-database to its B support.
func ToSetDB(d *kdb.Database[int64]) *kdb.Database[bool] {
	return kdb.MapDatabase(d, semiring.Bool, func(k int64) bool { return k > 0 })
}

// MaxWorlds caps possible-world enumeration; models with more worlds refuse
// to enumerate rather than exhaust memory (the UA-DB path never enumerates).
const MaxWorlds = 1 << 20
