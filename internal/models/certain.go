package models

import (
	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
)

// This file computes exact certain answers of select-project(-join) queries
// over x-DBs in PTIME, without enumerating worlds. They provide the ground
// truth against which the experiments measure the labeling scheme's false
// negative rate (Figures 15, 17, 20).
//
// Correctness: x-tuples are independent and their alternatives disjoint, so
// an adversary building a world picks one alternative per x-tuple
// independently. A result tuple t of π_A(σ_θ(R)) is therefore guaranteed in
// every world exactly when some non-optional x-tuple τ has *all* its
// alternatives satisfying θ and projecting onto t — otherwise the adversary
// avoids t's derivation from every x-tuple individually. The certain
// multiplicity is the number of such x-tuples (each world gets exactly one
// row from each of them, all equal to t).

// CertainSP returns the exact certain answers (with certain multiplicities)
// of π_proj(σ_pred(x)). A nil pred accepts everything.
func CertainSP(x *XRelation, pred func(types.Tuple) bool, proj []int) *kdb.Relation[int64] {
	return CertainSPMap(x, pred,
		func(t types.Tuple) types.Tuple { return t.Project(proj) },
		x.Schema.Project(proj))
}

// CertainSPMap generalizes CertainSP to an arbitrary per-tuple mapping
// (generalized projection, e.g. a CASE expression over an attribute): an
// x-tuple guarantees mapFn(t) when every alternative passes the predicate
// and maps to the same output tuple.
func CertainSPMap(x *XRelation, pred func(types.Tuple) bool, mapFn func(types.Tuple) types.Tuple, outSchema types.Schema) *kdb.Relation[int64] {
	out := kdb.New[int64](semiring.Nat, outSchema)
	for _, xt := range x.XTuples {
		if xt.Optional || len(xt.Alts) == 0 {
			continue
		}
		first := xt.Alts[0].Data
		if pred != nil && !pred(first) {
			continue
		}
		t := mapFn(first)
		all := true
		for _, alt := range xt.Alts[1:] {
			if pred != nil && !pred(alt.Data) {
				all = false
				break
			}
			if !mapFn(alt.Data).Equal(t) {
				all = false
				break
			}
		}
		if all {
			out.Add(t, 1)
		}
	}
	return out
}

// CertainSPJ returns certain answers of π_proj(σ_pred(x1 × x2)) by the
// pairwise covering condition: a pair of non-optional x-tuples (τ1, τ2)
// guarantees t when every combination of their alternatives satisfies the
// predicate and projects onto t. Sound always; exact unless a result tuple
// is guaranteed only by a *mixture* of different pairs across worlds, which
// requires correlated overlaps that the generated workloads do not produce
// (see the package comment).
func CertainSPJ(x1, x2 *XRelation, pred func(types.Tuple) bool, proj []int) *kdb.Relation[int64] {
	schema := x1.Schema.Concat(x2.Schema).Project(proj)
	out := kdb.New[int64](semiring.Nat, schema)
	for _, t1 := range x1.XTuples {
		if t1.Optional || len(t1.Alts) == 0 {
			continue
		}
		for _, t2 := range x2.XTuples {
			if t2.Optional || len(t2.Alts) == 0 {
				continue
			}
			joined := t1.Alts[0].Data.Concat(t2.Alts[0].Data)
			if pred != nil && !pred(joined) {
				continue
			}
			t := joined.Project(proj)
			all := true
			for _, a1 := range t1.Alts {
				for _, a2 := range t2.Alts {
					row := a1.Data.Concat(a2.Data)
					if pred != nil && !pred(row) {
						all = false
						break
					}
					if !row.Project(proj).Equal(t) {
						all = false
						break
					}
				}
				if !all {
					break
				}
			}
			if all {
				out.Add(t, 1)
			}
		}
	}
	return out
}
