package models

import (
	"fmt"

	"repro/internal/incomplete"
	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
)

// Alternative is one possible value of an x-tuple, with its probability in
// the BI-DB (probabilistic) variant.
type Alternative struct {
	Data types.Tuple
	Prob float64
}

// XTuple is a disjoint-independent choice among alternatives. In the
// incomplete variant Optional marks x-tuples that may contribute no row; in
// the BI-DB variant optionality is derived: P(τ) = Σ P(alt) < 1.
type XTuple struct {
	Alts     []Alternative
	Optional bool
}

// TotalProb returns P(τ) = Σ_t∈τ P(t).
func (x XTuple) TotalProb() float64 {
	p := 0.0
	for _, a := range x.Alts {
		p += a.Prob
	}
	return p
}

// XRelation is an x-relation: a set of independent x-tuples with mutually
// disjoint alternatives (Agrawal et al.'s Trio model; BI-DBs when
// Probabilistic).
type XRelation struct {
	Schema        types.Schema
	XTuples       []XTuple
	Probabilistic bool
}

// NewXRelation builds an empty x-relation.
func NewXRelation(schema types.Schema) *XRelation {
	return &XRelation{Schema: schema}
}

// AddCertain appends a single-alternative, non-optional x-tuple.
func (r *XRelation) AddCertain(t types.Tuple) {
	r.XTuples = append(r.XTuples, XTuple{Alts: []Alternative{{Data: t, Prob: 1}}})
}

// AddChoice appends a non-optional x-tuple choosing among the given tuples
// with uniform probability.
func (r *XRelation) AddChoice(ts ...types.Tuple) {
	alts := make([]Alternative, len(ts))
	for i, t := range ts {
		alts[i] = Alternative{Data: t, Prob: 1 / float64(len(ts))}
	}
	r.XTuples = append(r.XTuples, XTuple{Alts: alts})
}

// Add appends an arbitrary x-tuple.
func (r *XRelation) Add(x XTuple) { r.XTuples = append(r.XTuples, x) }

// LabelXDB is the paper's labeling scheme for x-DBs (Theorem 3, c-correct):
// a tuple's certain multiplicity is the number of x-tuples of which it is the
// single, non-optional alternative (BI-DB: single alternative with
// P(τ) = 1).
func LabelXDB(r *XRelation) *kdb.Relation[int64] {
	out := kdb.New[int64](semiring.Nat, r.Schema)
	for _, x := range r.XTuples {
		if len(x.Alts) != 1 {
			continue
		}
		if r.Probabilistic {
			if x.TotalProb() >= 1 {
				out.Add(x.Alts[0].Data, 1)
			}
		} else if !x.Optional {
			out.Add(x.Alts[0].Data, 1)
		}
	}
	return out
}

// BestGuessXDB extracts the best-guess world (Section 4.2): for every
// x-tuple the highest-probability alternative, unless skipping the x-tuple
// is more likely (max P(t) < 1 − P(τ)). For incomplete (non-probabilistic)
// x-relations the first alternative of every x-tuple is designated, matching
// the paper's Example 2.
func BestGuessXDB(r *XRelation) *kdb.Relation[int64] {
	out := kdb.New[int64](semiring.Nat, r.Schema)
	for _, x := range r.XTuples {
		if len(x.Alts) == 0 {
			continue
		}
		if !r.Probabilistic {
			out.Add(x.Alts[0].Data, 1)
			continue
		}
		best := 0
		for i, a := range x.Alts {
			if a.Prob > x.Alts[best].Prob {
				best = i
			}
		}
		if x.Alts[best].Prob >= 1-x.TotalProb() {
			out.Add(x.Alts[best].Data, 1)
		}
	}
	return out
}

// numChoices returns the branching factor of x-tuple x: one per alternative
// plus one for "absent" when the x-tuple is optional.
func numChoices(r *XRelation, x XTuple) int {
	n := len(x.Alts)
	if x.Optional || (r.Probabilistic && x.TotalProb() < 1) {
		n++
	}
	return n
}

// NumWorlds returns the total number of possible worlds, capped at
// MaxWorlds+1 to avoid overflow.
func (r *XRelation) NumWorlds() int {
	n := 1
	for _, x := range r.XTuples {
		n *= numChoices(r, x)
		if n > MaxWorlds {
			return MaxWorlds + 1
		}
	}
	return n
}

// WorldsXDB enumerates all possible worlds of the x-relation as an
// incomplete N-database. World probabilities are filled in for BI-DBs.
func WorldsXDB(r *XRelation) (*incomplete.DB[int64], error) {
	total := r.NumWorlds()
	if total > MaxWorlds {
		return nil, fmt.Errorf("models: x-DB has more than %d worlds", MaxWorlds)
	}
	db := &incomplete.DB[int64]{K: semiring.Nat}
	choice := make([]int, len(r.XTuples))
	var probs []float64
	for {
		rel := kdb.New[int64](semiring.Nat, r.Schema)
		p := 1.0
		for i, x := range r.XTuples {
			c := choice[i]
			if c < len(x.Alts) {
				rel.Add(x.Alts[c].Data, 1)
				p *= x.Alts[c].Prob
			} else {
				p *= 1 - x.TotalProb()
			}
		}
		w := kdb.NewDatabase[int64](semiring.Nat)
		w.Put(rel)
		db.Worlds = append(db.Worlds, w)
		probs = append(probs, p)
		// Advance the mixed-radix counter.
		i := 0
		for ; i < len(r.XTuples); i++ {
			choice[i]++
			if choice[i] < numChoices(r, r.XTuples[i]) {
				break
			}
			choice[i] = 0
		}
		if i == len(r.XTuples) {
			break
		}
	}
	if r.Probabilistic {
		db.Probs = probs
	}
	return db, nil
}

// XKey reports whether attribute set attrs is an x-key of r (Definition 7):
// for every non-optional x-tuple with more than one alternative, at least two
// alternatives differ on attrs. Queries whose projection list contains an
// x-key of every input relation preserve c-completeness (Theorem 6).
func XKey(r *XRelation, attrs []string) bool {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.Schema.IndexOf(a)
		if j < 0 {
			return false
		}
		idx[i] = j
	}
	for _, x := range r.XTuples {
		optional := x.Optional || (r.Probabilistic && x.TotalProb() < 1)
		if optional || len(x.Alts) <= 1 {
			continue
		}
		differ := false
		first := x.Alts[0].Data.Project(idx)
		for _, a := range x.Alts[1:] {
			if !a.Data.Project(idx).Equal(first) {
				differ = true
				break
			}
		}
		if !differ {
			return false
		}
	}
	return true
}
