package models

import (
	"testing"

	"repro/internal/cond"
	"repro/internal/incomplete"
	"repro/internal/types"
)

func it(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.NewInt(v)
	}
	return t
}

// --- TI-DBs ---

func sampleTI() *TIRelation {
	r := NewTIRelation(types.NewSchema("R", "a", "b"))
	r.AddCertain(it(1, 10))
	r.AddCertain(it(1, 10)) // duplicate: certain multiplicity 2
	r.AddOptional(it(2, 20), 0.9)
	r.AddOptional(it(3, 30), 0.2)
	r.AddOptional(it(4, 40), 1.0) // optional but P=1: certain
	return r
}

func TestLabelTIDB(t *testing.T) {
	l := LabelTIDB(sampleTI())
	if l.Get(it(1, 10)) != 2 {
		t.Errorf("cert multiplicity of duplicated row = %d, want 2", l.Get(it(1, 10)))
	}
	if l.Get(it(2, 20)) != 0 || l.Get(it(3, 30)) != 0 {
		t.Error("optional rows with P<1 must be labeled uncertain")
	}
	if l.Get(it(4, 40)) != 1 {
		t.Error("optional row with P=1 is certain")
	}
}

func TestBestGuessTIDB(t *testing.T) {
	w := BestGuessTIDB(sampleTI())
	if w.Get(it(1, 10)) != 2 {
		t.Error("BGW keeps non-optional rows")
	}
	if w.Get(it(2, 20)) != 1 {
		t.Error("BGW includes rows with P >= 0.5")
	}
	if w.Get(it(3, 30)) != 0 {
		t.Error("BGW excludes rows with P < 0.5")
	}
}

// TestLabelTIDBCCorrect is Theorem 1: the TI-DB labeling equals the certain
// annotation computed by world enumeration.
func TestLabelTIDBCCorrect(t *testing.T) {
	r := sampleTI()
	worlds, err := WorldsTIDB(r)
	if err != nil {
		t.Fatal(err)
	}
	// 2 branching rows (the P=1 "optional" row never branches) -> 4 worlds.
	if worlds.NumWorlds() != 4 {
		t.Fatalf("worlds = %d, want 4", worlds.NumWorlds())
	}
	cert := incomplete.CertainRelation(worlds, "R")
	label := LabelTIDB(r)
	for _, tp := range []types.Tuple{it(1, 10), it(2, 20), it(3, 30), it(4, 40)} {
		if label.Get(tp) != cert.Get(tp) {
			t.Errorf("tuple %s: label %d != cert %d (c-correctness)", tp, label.Get(tp), cert.Get(tp))
		}
	}
}

func TestWorldsTIDBProbabilities(t *testing.T) {
	r := NewTIRelation(types.NewSchema("R", "a"))
	r.AddOptional(it(1), 0.75)
	worlds, err := WorldsTIDB(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds.Probs) != 2 {
		t.Fatal("expected 2 worlds")
	}
	sum := worlds.Probs[0] + worlds.Probs[1]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("world probabilities sum to %f", sum)
	}
	if worlds.BestGuessWorld() != 1 {
		// world 1 includes the tuple (mask bit set) with P = 0.75
		t.Error("BGW should be the world containing the likely tuple")
	}
}

func TestWorldsTIDBLimit(t *testing.T) {
	r := NewTIRelation(types.NewSchema("R", "a"))
	for i := int64(0); i < 25; i++ {
		r.AddOptional(it(i), 0.5)
	}
	if _, err := WorldsTIDB(r); err == nil {
		t.Error("expected enumeration limit error")
	}
}

// --- x-DBs ---

func sampleXDB() *XRelation {
	r := NewXRelation(types.NewSchema("R", "a", "b"))
	r.AddCertain(it(1, 10))
	r.AddChoice(it(2, 20), it(2, 21)) // ambiguous
	x := XTuple{Alts: []Alternative{{Data: it(3, 30), Prob: 1}}, Optional: true}
	r.Add(x) // optional single alternative: not certain
	return r
}

func TestLabelXDB(t *testing.T) {
	l := LabelXDB(sampleXDB())
	if l.Get(it(1, 10)) != 1 {
		t.Error("single non-optional alternative is certain")
	}
	if l.Get(it(2, 20)) != 0 || l.Get(it(2, 21)) != 0 {
		t.Error("multi-alternative x-tuples are uncertain")
	}
	if l.Get(it(3, 30)) != 0 {
		t.Error("optional x-tuple is uncertain")
	}
}

func TestLabelXDBProbabilistic(t *testing.T) {
	r := NewXRelation(types.NewSchema("R", "a"))
	r.Probabilistic = true
	r.Add(XTuple{Alts: []Alternative{{Data: it(1), Prob: 1}}})
	r.Add(XTuple{Alts: []Alternative{{Data: it(2), Prob: 0.6}}})
	l := LabelXDB(r)
	if l.Get(it(1)) != 1 {
		t.Error("P(τ)=1 single alternative is certain")
	}
	if l.Get(it(2)) != 0 {
		t.Error("P(τ)<1 is uncertain")
	}
}

func TestBestGuessXDB(t *testing.T) {
	// Non-probabilistic: first alternative designated (paper's Example 2).
	w := BestGuessXDB(sampleXDB())
	if w.Get(it(2, 20)) != 1 || w.Get(it(2, 21)) != 0 {
		t.Error("non-probabilistic BGW picks the first alternative")
	}
	if w.Get(it(3, 30)) != 1 {
		t.Error("non-probabilistic BGW includes optional x-tuples' first alternative")
	}

	// Probabilistic: argmax alternative, skipped when absence is likelier.
	r := NewXRelation(types.NewSchema("R", "a"))
	r.Probabilistic = true
	r.Add(XTuple{Alts: []Alternative{{Data: it(1), Prob: 0.2}, {Data: it(2), Prob: 0.5}}})
	r.Add(XTuple{Alts: []Alternative{{Data: it(3), Prob: 0.1}}}) // absence P=0.9 wins
	w = BestGuessXDB(r)
	if w.Get(it(2)) != 1 || w.Get(it(1)) != 0 {
		t.Error("probabilistic BGW picks argmax alternative")
	}
	if w.Get(it(3)) != 0 {
		t.Error("probabilistic BGW skips x-tuple when absence is likelier")
	}
}

// TestLabelXDBCCorrect is Theorem 3: labelXDB equals the certain annotation
// from world enumeration.
func TestLabelXDBCCorrect(t *testing.T) {
	r := sampleXDB()
	worlds, err := WorldsXDB(r)
	if err != nil {
		t.Fatal(err)
	}
	// x-tuples: certain (1 choice) × choice-of-2 (2) × optional-single (2) = 4.
	if worlds.NumWorlds() != 4 {
		t.Fatalf("worlds = %d, want 4", worlds.NumWorlds())
	}
	cert := incomplete.CertainRelation(worlds, "R")
	label := LabelXDB(r)
	for _, tp := range []types.Tuple{it(1, 10), it(2, 20), it(2, 21), it(3, 30)} {
		if label.Get(tp) != cert.Get(tp) {
			t.Errorf("tuple %s: label %d != cert %d", tp, label.Get(tp), cert.Get(tp))
		}
	}
}

func TestWorldsXDBProbabilities(t *testing.T) {
	r := NewXRelation(types.NewSchema("R", "a"))
	r.Probabilistic = true
	r.Add(XTuple{Alts: []Alternative{{Data: it(1), Prob: 0.7}, {Data: it(2), Prob: 0.3}}})
	worlds, err := WorldsXDB(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds.Worlds) != 2 {
		t.Fatalf("worlds = %d", len(worlds.Worlds))
	}
	sum := 0.0
	for _, p := range worlds.Probs {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %f", sum)
	}
}

func TestXKey(t *testing.T) {
	r := NewXRelation(types.NewSchema("R", "a", "b"))
	r.AddChoice(it(1, 10), it(1, 20)) // alternatives agree on a, differ on b
	r.AddCertain(it(2, 30))
	if XKey(r, []string{"a"}) {
		t.Error("a is not an x-key: alternatives identical on a")
	}
	if !XKey(r, []string{"b"}) {
		t.Error("b is an x-key")
	}
	if !XKey(r, []string{"a", "b"}) {
		t.Error("supersets of x-keys are x-keys (Lemma 7)")
	}
	if XKey(r, []string{"missing"}) {
		t.Error("unknown attribute is not an x-key")
	}
	// Optional x-tuples are exempt from the x-key condition.
	r2 := NewXRelation(types.NewSchema("R", "a", "b"))
	r2.Add(XTuple{Alts: []Alternative{{Data: it(1, 10)}, {Data: it(1, 10)}}, Optional: true})
	if !XKey(r2, []string{"a"}) {
		t.Error("optional x-tuples do not break x-keys")
	}
}

// --- C-tables ---

func TestLabelCTable(t *testing.T) {
	c := NewCTable(types.NewSchema("R", "a", "b"))
	c.AddGround(it(1, 10)) // TRUE condition: certain
	// Ground but guarded by a non-tautology.
	c.Add([]cond.Term{cond.CI(2), cond.CI(20)}, cond.Cmp(cond.V("X"), cond.OpEq, cond.CI(1)))
	// Ground with CNF tautology.
	c.Add([]cond.Term{cond.CI(3), cond.CI(30)},
		cond.Or{cond.Cmp(cond.V("X"), cond.OpEq, cond.CI(1)), cond.Cmp(cond.V("X"), cond.OpNe, cond.CI(1))})
	// Variable in the row: never labeled certain.
	c.Add([]cond.Term{cond.CI(4), cond.V("Y")}, cond.Lit(true))
	c.SetDomain("X", types.NewInt(0), types.NewInt(1))
	c.SetDomain("Y", types.NewInt(40), types.NewInt(41))

	l := LabelCTable(c)
	if l.Get(it(1, 10)) != 1 {
		t.Error("ground TRUE row is certain")
	}
	if l.Get(it(2, 20)) != 0 {
		t.Error("conditionally guarded row is uncertain")
	}
	if l.Get(it(3, 30)) != 1 {
		t.Error("CNF-tautology row is certain")
	}
	if l.Get(it(4, 40)) != 0 || l.Get(it(4, 41)) != 0 {
		t.Error("rows with variables are uncertain")
	}
}

// TestLabelCTableCSound is Theorem 2: every tuple the labeling marks certain
// is certain under world enumeration (but not vice versa — see Example 9).
func TestLabelCTableCSound(t *testing.T) {
	// The paper's Example 9: t1 = (1, X) with X = 1; t2 = (1, 1) with X ≠ 1.
	c := NewCTable(types.NewSchema("R", "a", "b"))
	c.Add([]cond.Term{cond.CI(1), cond.V("X")}, cond.Cmp(cond.V("X"), cond.OpEq, cond.CI(1)))
	c.Add([]cond.Term{cond.CI(1), cond.CI(1)}, cond.Cmp(cond.V("X"), cond.OpNe, cond.CI(1)))
	c.SetDomain("X", types.NewInt(1), types.NewInt(2))

	label := LabelCTable(c)
	if label.Get(it(1, 1)) != 0 {
		t.Fatal("Example 9: labeling must be conservative and mark (1,1) uncertain")
	}
	worlds, err := WorldsCTable(c)
	if err != nil {
		t.Fatal(err)
	}
	cert := incomplete.CertainRelation(worlds, "R")
	if cert.Get(it(1, 1)) != 1 {
		t.Fatal("Example 9: (1,1) is in fact certain")
	}
	// c-soundness: label ⪯ cert everywhere.
	label.ForEach(func(tp types.Tuple, l int64) {
		if l > cert.Get(tp) {
			t.Errorf("label of %s exceeds certain annotation", tp)
		}
	})
}

func TestCTableInstantiateAndWorlds(t *testing.T) {
	c := NewCTable(types.NewSchema("R", "a"))
	c.Add([]cond.Term{cond.V("X")}, cond.Cmp(cond.V("X"), cond.OpGt, cond.CI(0)))
	c.SetDomain("X", types.NewInt(0), types.NewInt(1), types.NewInt(2))
	worlds, err := WorldsCTable(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds.Worlds) != 3 {
		t.Fatalf("worlds = %d, want 3", len(worlds.Worlds))
	}
	// X=0 yields empty; X=1 yields (1); X=2 yields (2).
	sizes := 0
	for _, w := range worlds.Worlds {
		sizes += w.Get("R").Len()
	}
	if sizes != 2 {
		t.Errorf("total tuples across worlds = %d, want 2", sizes)
	}
}

func TestBestGuessCTable(t *testing.T) {
	c := NewCTable(types.NewSchema("R", "a"))
	c.Probabilistic = true
	c.Add([]cond.Term{cond.V("X")}, cond.Lit(true))
	c.Domains["X"] = []WeightedValue{
		{Value: types.NewInt(1), Prob: 0.2},
		{Value: types.NewInt(2), Prob: 0.8},
	}
	w := BestGuessCTable(c)
	if w.Get(it(2)) != 1 || w.Get(it(1)) != 0 {
		t.Error("BGW should bind X to its most probable value")
	}
}

func TestCTableVars(t *testing.T) {
	c := NewCTable(types.NewSchema("R", "a"))
	c.Add([]cond.Term{cond.V("B")}, cond.Cmp(cond.V("A"), cond.OpEq, cond.CI(1)))
	vars := c.Vars()
	if len(vars) != 2 || vars[0] != "A" || vars[1] != "B" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestCTupleGround(t *testing.T) {
	g := CTuple{Data: []cond.Term{cond.CI(1), cond.CI(2)}}
	if !g.IsGround() {
		t.Error("IsGround")
	}
	if !g.Ground().Equal(it(1, 2)) {
		t.Error("Ground")
	}
	v := CTuple{Data: []cond.Term{cond.V("X")}}
	if v.IsGround() {
		t.Error("IsGround with variable")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Ground with variable should panic")
			}
		}()
		v.Ground()
	}()
}

func TestToSet(t *testing.T) {
	r := LabelTIDB(sampleTI())
	b := ToSet(r)
	if !b.Get(it(1, 10)) {
		t.Error("support conversion")
	}
	if b.Get(it(2, 20)) {
		t.Error("zero stays absent")
	}
}
