package models

import (
	"fmt"

	"repro/internal/incomplete"
	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
)

// TITuple is one row of a TI-DB. In the incomplete variant Optional marks
// rows that may be absent; in the probabilistic variant Prob is the marginal
// probability (Optional is then derived: P(t) < 1).
type TITuple struct {
	Data     types.Tuple
	Optional bool
	Prob     float64 // in [0,1]; 1 for non-optional incomplete rows
}

// TIRelation is a tuple-independent relation: every row is an independent
// existence event.
type TIRelation struct {
	Schema types.Schema
	Rows   []TITuple
}

// NewTIRelation builds an empty TI-relation.
func NewTIRelation(schema types.Schema) *TIRelation {
	return &TIRelation{Schema: schema}
}

// AddCertain appends a non-optional row (P = 1).
func (r *TIRelation) AddCertain(t types.Tuple) {
	r.Rows = append(r.Rows, TITuple{Data: t, Optional: false, Prob: 1})
}

// AddOptional appends an optional row with the given marginal probability.
func (r *TIRelation) AddOptional(t types.Tuple, prob float64) {
	r.Rows = append(r.Rows, TITuple{Data: t, Optional: true, Prob: prob})
}

// LabelTIDB is the paper's labeling scheme for TI-DBs (Theorem 1,
// c-correct): a tuple's label is its certain multiplicity — the number of
// copies that are non-optional (probabilistic: have P(t) = 1).
func LabelTIDB(r *TIRelation) *kdb.Relation[int64] {
	out := kdb.New[int64](semiring.Nat, r.Schema)
	for _, row := range r.Rows {
		if !row.Optional || row.Prob >= 1 {
			out.Add(row.Data, 1)
		}
	}
	return out
}

// BestGuessTIDB extracts the best-guess world (Section 4.2): all rows with
// P(t) ≥ 0.5. Non-optional rows always have P = 1 and are always included.
func BestGuessTIDB(r *TIRelation) *kdb.Relation[int64] {
	out := kdb.New[int64](semiring.Nat, r.Schema)
	for _, row := range r.Rows {
		if !row.Optional || row.Prob >= 0.5 {
			out.Add(row.Data, 1)
		}
	}
	return out
}

// OptionalCount returns the number of optional rows (those that create
// branching in the world set).
func (r *TIRelation) OptionalCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.Optional && row.Prob < 1 {
			n++
		}
	}
	return n
}

// WorldsTIDB enumerates all possible worlds of the TI-relation as an
// incomplete N-database with the relation registered under its schema name.
// World probabilities are filled in when every optional row carries a
// probability. It returns an error if there would be more than MaxWorlds
// worlds.
func WorldsTIDB(r *TIRelation) (*incomplete.DB[int64], error) {
	nOpt := r.OptionalCount()
	if nOpt > 20 || 1<<nOpt > MaxWorlds {
		return nil, fmt.Errorf("models: TI-DB has 2^%d worlds, beyond enumeration limit", nOpt)
	}
	optIdx := make([]int, 0, nOpt)
	for i, row := range r.Rows {
		if row.Optional && row.Prob < 1 {
			optIdx = append(optIdx, i)
		}
	}
	n := 1 << nOpt
	db := &incomplete.DB[int64]{K: semiring.Nat}
	probs := make([]float64, 0, n)
	hasProbs := true
	for mask := 0; mask < n; mask++ {
		rel := kdb.New[int64](semiring.Nat, r.Schema)
		p := 1.0
		for i, row := range r.Rows {
			include := !row.Optional || row.Prob >= 1
			if !include {
				bit := indexOfInt(optIdx, i)
				include = mask&(1<<bit) != 0
				if row.Prob > 0 || row.Prob == 0 {
					if include {
						p *= row.Prob
					} else {
						p *= 1 - row.Prob
					}
				}
			}
			if include {
				rel.Add(row.Data, 1)
			}
		}
		w := kdb.NewDatabase[int64](semiring.Nat)
		w.Put(rel)
		db.Worlds = append(db.Worlds, w)
		probs = append(probs, p)
	}
	if hasProbs {
		db.Probs = probs
	}
	return db, nil
}

func indexOfInt(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
