package models

import (
	"fmt"
	"sort"

	"repro/internal/cond"
	"repro/internal/incomplete"
	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
)

// CTuple is one row of a C-table: per-attribute terms (constants or labeled
// nulls / variables) guarded by a local condition φ_D(t).
type CTuple struct {
	Data []cond.Term
	Cond cond.Expr
}

// IsGround reports whether every attribute of the row is a constant.
func (t CTuple) IsGround() bool {
	for _, term := range t.Data {
		if term.IsVar() {
			return false
		}
	}
	return true
}

// Ground returns the row's tuple of constants; it panics when the row still
// contains variables.
func (t CTuple) Ground() types.Tuple {
	out := make(types.Tuple, len(t.Data))
	for i, term := range t.Data {
		if term.IsVar() {
			panic(fmt.Sprintf("models: Ground() on row with variable %s", term.Var))
		}
		out[i] = term.Const
	}
	return out
}

// WeightedValue is one domain element of a C-table variable, with its
// probability in the PC-table variant.
type WeightedValue struct {
	Value types.Value
	Prob  float64
}

// CTable is a C-table under the closed-world assumption: every valuation of
// the variables over their domains defines a possible world containing the
// rows whose local conditions it satisfies. When Probabilistic, variable
// assignments are independent events with the given weights (PC-tables,
// Green & Tannen).
type CTable struct {
	Schema        types.Schema
	Tuples        []CTuple
	Domains       map[string][]WeightedValue
	Probabilistic bool
}

// NewCTable builds an empty C-table.
func NewCTable(schema types.Schema) *CTable {
	return &CTable{Schema: schema, Domains: make(map[string][]WeightedValue)}
}

// AddGround appends a variable-free row guarded by TRUE.
func (c *CTable) AddGround(t types.Tuple) {
	terms := make([]cond.Term, len(t))
	for i, v := range t {
		terms[i] = cond.C(v)
	}
	c.Tuples = append(c.Tuples, CTuple{Data: terms, Cond: cond.Lit(true)})
}

// Add appends a row with an explicit condition.
func (c *CTable) Add(data []cond.Term, e cond.Expr) {
	c.Tuples = append(c.Tuples, CTuple{Data: data, Cond: e})
}

// SetDomain declares the domain of a variable with uniform probabilities.
func (c *CTable) SetDomain(v string, vals ...types.Value) {
	ws := make([]WeightedValue, len(vals))
	for i, val := range vals {
		ws[i] = WeightedValue{Value: val, Prob: 1 / float64(len(vals))}
	}
	c.Domains[v] = ws
}

// Vars returns the sorted variables of the C-table (from rows and
// conditions).
func (c *CTable) Vars() []string {
	set := make(map[string]bool)
	for _, t := range c.Tuples {
		for _, term := range t.Data {
			if term.IsVar() {
				set[term.Var] = true
			}
		}
		for _, v := range cond.Vars(t.Cond) {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// LabelCTable is the paper's labeling scheme for C-tables (Theorem 2,
// c-sound): a row counts toward a tuple's certain multiplicity only when it
// is ground and its local condition is a CNF tautology — a sufficient but
// not necessary condition for certainty, checkable in PTIME.
func LabelCTable(c *CTable) *kdb.Relation[int64] {
	out := kdb.New[int64](semiring.Nat, c.Schema)
	for _, t := range c.Tuples {
		if t.IsGround() && cond.IsCNF(t.Cond) && cond.CNFTautology(t.Cond) {
			out.Add(t.Ground(), 1)
		}
	}
	return out
}

// Instantiate evaluates the C-table under a total valuation, producing the
// corresponding possible world as an N-relation.
func (c *CTable) Instantiate(v cond.Valuation) *kdb.Relation[int64] {
	out := kdb.New[int64](semiring.Nat, c.Schema)
	for _, t := range c.Tuples {
		if !cond.Eval(t.Cond, v) {
			continue
		}
		row := make(types.Tuple, len(t.Data))
		for i, term := range t.Data {
			if term.IsVar() {
				val, ok := v[term.Var]
				if !ok {
					panic(fmt.Sprintf("models: valuation misses variable %s", term.Var))
				}
				row[i] = val
			} else {
				row[i] = term.Const
			}
		}
		out.Add(row, 1)
	}
	return out
}

// BestGuessCTable extracts the best-guess world: each variable is bound to
// its most probable domain value (first value for incomplete C-tables) and
// the table is instantiated under that valuation. For PC-tables this is the
// most likely world because variables are independent.
func BestGuessCTable(c *CTable) *kdb.Relation[int64] {
	v := make(cond.Valuation)
	for name, dom := range c.Domains {
		if len(dom) == 0 {
			panic(fmt.Sprintf("models: variable %s has empty domain", name))
		}
		best := 0
		if c.Probabilistic {
			for i, wv := range dom {
				if wv.Prob > dom[best].Prob {
					best = i
				}
			}
		}
		v[name] = dom[best].Value
	}
	return c.Instantiate(v)
}

// NumWorlds returns the number of valuations, capped at MaxWorlds+1.
func (c *CTable) NumWorlds() int {
	n := 1
	for _, name := range c.Vars() {
		dom := c.Domains[name]
		if len(dom) == 0 {
			return 0
		}
		n *= len(dom)
		if n > MaxWorlds {
			return MaxWorlds + 1
		}
	}
	return n
}

// WorldsCTable enumerates every valuation's world as an incomplete
// N-database. Probabilities are attached for PC-tables.
func WorldsCTable(c *CTable) (*incomplete.DB[int64], error) {
	vars := c.Vars()
	for _, v := range vars {
		if len(c.Domains[v]) == 0 {
			return nil, fmt.Errorf("models: variable %s has no domain", v)
		}
	}
	if c.NumWorlds() > MaxWorlds {
		return nil, fmt.Errorf("models: C-table has more than %d worlds", MaxWorlds)
	}
	db := &incomplete.DB[int64]{K: semiring.Nat}
	choice := make([]int, len(vars))
	var probs []float64
	for {
		v := make(cond.Valuation, len(vars))
		p := 1.0
		for i, name := range vars {
			wv := c.Domains[name][choice[i]]
			v[name] = wv.Value
			p *= wv.Prob
		}
		w := kdb.NewDatabase[int64](semiring.Nat)
		w.Put(c.Instantiate(v))
		db.Worlds = append(db.Worlds, w)
		probs = append(probs, p)
		i := 0
		for ; i < len(vars); i++ {
			choice[i]++
			if choice[i] < len(c.Domains[vars[i]]) {
				break
			}
			choice[i] = 0
		}
		if i == len(vars) {
			break
		}
		if len(vars) == 0 {
			break
		}
	}
	if c.Probabilistic {
		db.Probs = probs
	}
	return db, nil
}
