// Package sql implements the SQL frontend of the UA-DB middleware: a lexer
// and recursive-descent parser for the SELECT dialect the paper's rewriting
// engine accepts, including the input-model annotations of Section 9.2
// (IS TI WITH PROBABILITY, IS X WITH XID/ALTID/PROBABILITY, IS CTABLE WITH
// VARIABLES/LOCAL CONDITION).
package sql

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// SelectStmt is a SELECT query, possibly the head of a UNION ALL chain.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	// Union is the next SELECT in a UNION ALL chain, nil at the tail.
	Union *SelectStmt
}

// SelectItem is one projection of the select list.
type SelectItem struct {
	Star      bool   // SELECT * or qualifier.*
	Qualifier string // for qualifier.*
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// FromItem is one comma-separated element of the FROM clause: a chain of
// joins over primaries.
type FromItem struct {
	Primary Primary
	Joins   []JoinClause
}

// JoinClause is an explicit JOIN ... ON ... applied to the preceding
// primary.
type JoinClause struct {
	Right Primary
	On    Expr
}

// Primary is a base table (optionally annotated with an uncertainty model)
// or a parenthesized subquery with an alias.
type Primary struct {
	Table    string
	Alias    string
	Model    *ModelAnnotation
	Subquery *SelectStmt
}

// ModelKind enumerates the paper's input uncertainty models.
type ModelKind uint8

// The input model kinds of Section 9.2.
const (
	ModelTI ModelKind = iota
	ModelX
	ModelCTable
)

// String renders the model kind.
func (k ModelKind) String() string {
	switch k {
	case ModelTI:
		return "TI"
	case ModelX:
		return "X"
	case ModelCTable:
		return "CTABLE"
	default:
		return "?"
	}
}

// ModelAnnotation carries the metadata of an IS <model> WITH ... clause.
type ModelAnnotation struct {
	Kind     ModelKind
	ProbAttr string   // TI, X
	XidAttr  string   // X
	AltAttr  string   // X
	VarAttrs []string // CTABLE: shadow attributes holding variable names
	CondAttr string   // CTABLE: attribute holding the local condition string
}

// Expr is a SQL scalar/boolean expression.
type Expr interface {
	fmt.Stringer
	sqlExpr()
}

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Qualifier string
	Name      string
}

// Literal is a constant.
type Literal struct{ Value types.Value }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators in precedence groups.
const (
	BinOr BinOp = iota
	BinAnd
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinAdd
	BinSub
	BinMul
	BinDiv
	BinMod
	BinConcat
)

var binOpNames = map[BinOp]string{
	BinOr: "OR", BinAnd: "AND", BinEq: "=", BinNe: "<>", BinLt: "<",
	BinLe: "<=", BinGt: ">", BinGe: ">=", BinAdd: "+", BinSub: "-",
	BinMul: "*", BinDiv: "/", BinMod: "%", BinConcat: "||",
}

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Unary applies NOT or numeric negation.
type Unary struct {
	Not bool // true: NOT; false: unary minus
	E   Expr
}

// Between is e BETWEEN lo AND hi (inclusive).
type Between struct {
	E, Lo, Hi Expr
	Negated   bool
}

// InList is e IN (v1, v2, ...).
type InList struct {
	E       Expr
	List    []Expr
	Negated bool
}

// Like is e LIKE pattern with % and _ wildcards.
type Like struct {
	E, Pattern Expr
	Negated    bool
}

// IsNull is e IS [NOT] NULL.
type IsNull struct {
	E       Expr
	Negated bool
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr
}

// When is one WHEN/THEN branch.
type When struct{ Cond, Result Expr }

// FuncCall is a function application; Star marks COUNT(*).
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

func (ColumnRef) sqlExpr() {}
func (Literal) sqlExpr()   {}
func (Binary) sqlExpr()    {}
func (Unary) sqlExpr()     {}
func (Between) sqlExpr()   {}
func (InList) sqlExpr()    {}
func (Like) sqlExpr()      {}
func (IsNull) sqlExpr()    {}
func (Case) sqlExpr()      {}
func (FuncCall) sqlExpr()  {}

func (e ColumnRef) String() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

func (e Literal) String() string {
	if e.Value.Kind() == types.KindString {
		return "'" + e.Value.String() + "'"
	}
	return e.Value.String()
}

func (e Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, binOpNames[e.Op], e.R)
}

func (e Unary) String() string {
	if e.Not {
		return fmt.Sprintf("NOT (%s)", e.E)
	}
	return fmt.Sprintf("-(%s)", e.E)
}

func (e Between) String() string {
	n := ""
	if e.Negated {
		n = " NOT"
	}
	return fmt.Sprintf("(%s%s BETWEEN %s AND %s)", e.E, n, e.Lo, e.Hi)
}

func (e InList) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	n := ""
	if e.Negated {
		n = " NOT"
	}
	return fmt.Sprintf("(%s%s IN (%s))", e.E, n, strings.Join(parts, ", "))
}

func (e Like) String() string {
	n := ""
	if e.Negated {
		n = " NOT"
	}
	return fmt.Sprintf("(%s%s LIKE %s)", e.E, n, e.Pattern)
}

func (e IsNull) String() string {
	if e.Negated {
		return fmt.Sprintf("(%s IS NOT NULL)", e.E)
	}
	return fmt.Sprintf("(%s IS NULL)", e.E)
}

func (e Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if e.Operand != nil {
		sb.WriteString(" " + e.Operand.String())
	}
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if e.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", e.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

func (e FuncCall) String() string {
	if e.Star {
		return strings.ToUpper(e.Name) + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return strings.ToUpper(e.Name) + "(" + strings.Join(parts, ", ") + ")"
}

// String renders the statement (diagnostics only; not guaranteed to
// round-trip).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star && it.Qualifier != "":
			sb.WriteString(it.Qualifier + ".*")
		case it.Star:
			sb.WriteString("*")
		default:
			sb.WriteString(it.Expr.String())
			if it.Alias != "" {
				sb.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Primary.describe())
			for _, j := range f.Joins {
				fmt.Fprintf(&sb, " JOIN %s ON %s", j.Right.describe(), j.On)
			}
		}
	}
	if s.Where != nil {
		fmt.Fprintf(&sb, " WHERE %s", s.Where)
	}
	if s.Union != nil {
		fmt.Fprintf(&sb, " UNION ALL %s", s.Union)
	}
	return sb.String()
}

func (p Primary) describe() string {
	if p.Subquery != nil {
		return "(" + p.Subquery.String() + ") " + p.Alias
	}
	out := p.Table
	if p.Model != nil {
		out += " IS " + p.Model.Kind.String()
	}
	if p.Alias != "" && !strings.EqualFold(p.Alias, p.Table) {
		out += " " + p.Alias
	}
	return out
}
