package sql

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func TestTokenize(t *testing.T) {
	toks, err := Tokenize("SELECT a, b.c FROM t WHERE x >= 1.5 AND name = 'it''s' -- comment\n LIMIT 3;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokenKind{
		TokIdent, TokIdent, TokComma, TokIdent, TokDot, TokIdent, TokIdent,
		TokIdent, TokIdent, TokIdent, TokOp, TokNumber, TokIdent, TokIdent,
		TokOp, TokString, TokIdent, TokNumber, TokSemi, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: kind %d, want %d (%q)", i, kinds[i], want[i], toks[i].Text)
		}
	}
	// Escaped quote handling.
	for _, tok := range toks {
		if tok.Kind == TokString && tok.Text != "it's" {
			t.Errorf("string literal = %q, want %q", tok.Text, "it's")
		}
	}
}

// TestTokenizeStringEscapes pins both escape forms inside string literals:
// the SQL-standard doubled quote and the backslash forms \' and \\. A
// backslash before any other character is a literal backslash.
func TestTokenizeStringEscapes(t *testing.T) {
	cases := []struct{ in, want string }{
		{`'it''s'`, "it's"},
		{`'it\'s'`, "it's"},
		{`'a\\b'`, `a\b`},
		{`'a\nb'`, `a\nb`},     // no C-style escapes: backslash is literal
		{`'\\''x'`, `\'x`},     // backslash-escape then doubled quote
		{`'don\'t -- go'`, "don't -- go"}, // comment marker inside a literal
	}
	for _, c := range cases {
		toks, err := Tokenize(c.in)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", c.in, err)
			continue
		}
		if toks[0].Kind != TokString || toks[0].Text != c.want {
			t.Errorf("Tokenize(%q) = %q, want %q", c.in, toks[0].Text, c.want)
		}
	}
	// An escaped quote must not terminate the literal.
	if _, err := Tokenize(`'dangling\'`); err == nil {
		t.Error(`'dangling\' lexed as a complete string`)
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, in := range []string{"'unterminated", "\"unterminated", "a ! b", "$"} {
		if _, err := Tokenize(in); err == nil {
			t.Errorf("Tokenize(%q): expected error", in)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	toks, err := Tokenize("1 2.5 .5 1e3 1.5e-2")
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"1", "2.5", ".5", "1e3", "1.5e-2"}
	for i, want := range texts {
		if toks[i].Kind != TokNumber || toks[i].Text != want {
			t.Errorf("number %d: %q, want %q", i, toks[i].Text, want)
		}
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := MustParse("SELECT id, name AS n FROM users WHERE age > 21")
	if len(s.Items) != 2 {
		t.Fatal("items")
	}
	if s.Items[1].Alias != "n" {
		t.Error("alias")
	}
	if len(s.From) != 1 || s.From[0].Primary.Table != "users" {
		t.Error("from")
	}
	b, ok := s.Where.(Binary)
	if !ok || b.Op != BinGt {
		t.Errorf("where = %v", s.Where)
	}
}

func TestParseStar(t *testing.T) {
	s := MustParse("SELECT * FROM t")
	if !s.Items[0].Star {
		t.Error("star")
	}
	s = MustParse("SELECT a.*, b.x FROM t a, u b")
	if !s.Items[0].Star || s.Items[0].Qualifier != "a" {
		t.Error("qualified star")
	}
	c, ok := s.Items[1].Expr.(ColumnRef)
	if !ok || c.Qualifier != "b" || c.Name != "x" {
		t.Error("qualified column after star lookahead")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	s := MustParse("SELECT x y FROM t u")
	if s.Items[0].Alias != "y" {
		t.Error("implicit select alias")
	}
	if s.From[0].Primary.Alias != "u" {
		t.Error("implicit table alias")
	}
}

func TestParseJoins(t *testing.T) {
	s := MustParse("SELECT * FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.w, d")
	if len(s.From) != 2 {
		t.Fatalf("from items = %d", len(s.From))
	}
	if len(s.From[0].Joins) != 2 {
		t.Fatalf("joins = %d", len(s.From[0].Joins))
	}
	if s.From[1].Primary.Table != "d" {
		t.Error("comma join")
	}
}

func TestParseSubquery(t *testing.T) {
	s := MustParse("SELECT * FROM (SELECT a FROM t WHERE a > 1) sub WHERE sub.a < 5")
	if s.From[0].Primary.Subquery == nil || s.From[0].Primary.Alias != "sub" {
		t.Error("subquery")
	}
}

func TestParseExpressions(t *testing.T) {
	s := MustParse(`SELECT CASE w WHEN 1 THEN 'a' ELSE 'b' END,
		CASE WHEN x > 1 AND y < 2 THEN 1 END,
		x BETWEEN 1 AND 10,
		y NOT IN (1, 2, 3),
		name LIKE 'abc%',
		z IS NOT NULL,
		-x + y * 2,
		a || b
		FROM t`)
	if len(s.Items) != 8 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if c, ok := s.Items[0].Expr.(Case); !ok || c.Operand == nil || c.Else == nil {
		t.Error("simple case")
	}
	if c, ok := s.Items[1].Expr.(Case); !ok || c.Operand != nil || c.Else != nil {
		t.Error("searched case")
	}
	if _, ok := s.Items[2].Expr.(Between); !ok {
		t.Error("between")
	}
	if in, ok := s.Items[3].Expr.(InList); !ok || !in.Negated || len(in.List) != 3 {
		t.Error("not in")
	}
	if _, ok := s.Items[4].Expr.(Like); !ok {
		t.Error("like")
	}
	if n, ok := s.Items[5].Expr.(IsNull); !ok || !n.Negated {
		t.Error("is not null")
	}
	if b, ok := s.Items[6].Expr.(Binary); !ok || b.Op != BinAdd {
		t.Error("arith precedence")
	} else if _, ok := b.L.(Unary); !ok {
		t.Error("unary minus binds tighter than +")
	}
	if b, ok := s.Items[7].Expr.(Binary); !ok || b.Op != BinConcat {
		t.Error("concat")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE p = 1 OR q = 2 AND r = 3")
	or, ok := s.Where.(Binary)
	if !ok || or.Op != BinOr {
		t.Fatal("OR should be the root")
	}
	and, ok := or.R.(Binary)
	if !ok || and.Op != BinAnd {
		t.Fatal("AND binds tighter than OR")
	}
	s = MustParse("SELECT a FROM t WHERE NOT p = 1 AND q = 2")
	andRoot, ok := s.Where.(Binary)
	if !ok || andRoot.Op != BinAnd {
		t.Fatal("NOT binds tighter than AND")
	}
	if _, ok := andRoot.L.(Unary); !ok {
		t.Fatal("NOT wraps the left comparison")
	}
	s = MustParse("SELECT a FROM t WHERE x + 1 * 2 = 3")
	cmp := s.Where.(Binary)
	add, ok := cmp.L.(Binary)
	if !ok || add.Op != BinAdd {
		t.Fatal("* binds tighter than +")
	}
}

func TestParseUnionAll(t *testing.T) {
	s := MustParse("SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v")
	n := 0
	for cur := s; cur != nil; cur = cur.Union {
		n++
	}
	if n != 3 {
		t.Errorf("union chain length = %d", n)
	}
	if _, err := Parse("SELECT a FROM t UNION SELECT b FROM u"); err == nil {
		t.Error("bare UNION (set semantics) must be rejected")
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	s := MustParse(`SELECT state, count(*) AS n FROM t
		GROUP BY state HAVING count(*) > 2
		ORDER BY n DESC, state LIMIT 10`)
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Error("group/having")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Error("order by")
	}
	if s.Limit != 10 {
		t.Error("limit")
	}
	if !s.Items[1].Expr.(FuncCall).Star {
		t.Error("count(*)")
	}
}

func TestParseDistinct(t *testing.T) {
	s := MustParse("SELECT DISTINCT a FROM t")
	if !s.Distinct {
		t.Error("distinct")
	}
}

func TestParseModelAnnotations(t *testing.T) {
	s := MustParse("SELECT * FROM R IS TI WITH PROBABILITY (p)")
	m := s.From[0].Primary.Model
	if m == nil || m.Kind != ModelTI || m.ProbAttr != "p" {
		t.Fatalf("TI annotation: %+v", m)
	}

	s = MustParse("SELECT * FROM R IS X WITH XID (tid) ALTID (aid) PROBABILITY (p) r2")
	m = s.From[0].Primary.Model
	if m == nil || m.Kind != ModelX || m.XidAttr != "tid" || m.AltAttr != "aid" || m.ProbAttr != "p" {
		t.Fatalf("X annotation: %+v", m)
	}
	if s.From[0].Primary.Alias != "r2" {
		t.Error("alias after annotation")
	}

	s = MustParse("SELECT * FROM R IS CTABLE WITH VARIABLES (v1, v2) LOCAL CONDITION (lc)")
	m = s.From[0].Primary.Model
	if m == nil || m.Kind != ModelCTable || len(m.VarAttrs) != 2 || m.CondAttr != "lc" {
		t.Fatalf("CTABLE annotation: %+v", m)
	}
}

func TestParseLiterals(t *testing.T) {
	s := MustParse("SELECT 1, 2.5, 'str', NULL, TRUE, FALSE FROM t")
	wants := []types.Value{
		types.NewInt(1), types.NewFloat(2.5), types.NewString("str"),
		types.Null(), types.NewBool(true), types.NewBool(false),
	}
	for i, w := range wants {
		lit, ok := s.Items[i].Expr.(Literal)
		if !ok || !lit.Value.Equal(w) {
			t.Errorf("literal %d = %v, want %v", i, s.Items[i].Expr, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra garbage (",
		"SELECT CASE END FROM t",
		"SELECT a FROM (SELECT b FROM u",
		"SELECT a FROM t IS FOO WITH BAR (x)",
		"SELECT a FROM t JOIN u",
		"INSERT INTO t VALUES (1)",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestStmtString(t *testing.T) {
	s := MustParse("SELECT a, b AS x FROM t, u WHERE a = 1 UNION ALL SELECT c, d FROM v")
	str := s.String()
	for _, frag := range []string{"SELECT", "FROM t", "WHERE", "UNION ALL"} {
		if !strings.Contains(str, frag) {
			t.Errorf("String() missing %q: %s", frag, str)
		}
	}
}

func TestParseAliasBeforeAnnotation(t *testing.T) {
	s := MustParse("SELECT s.id FROM sensors s IS TI WITH PROBABILITY (p)")
	prim := s.From[0].Primary
	if prim.Alias != "s" || prim.Model == nil || prim.Model.Kind != ModelTI {
		t.Fatalf("primary = %+v", prim)
	}
	// Annotation before alias still works (the paper's order).
	s = MustParse("SELECT s.id FROM sensors IS TI WITH PROBABILITY (p) s")
	prim = s.From[0].Primary
	if prim.Alias != "s" || prim.Model == nil {
		t.Fatalf("primary = %+v", prim)
	}
	// A second IS annotation is rejected.
	if _, err := Parse("SELECT a FROM t IS TI WITH PROBABILITY (p) IS TI WITH PROBABILITY (q)"); err == nil {
		t.Error("duplicate annotation must fail")
	}
}
