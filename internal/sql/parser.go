package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Parser is a recursive-descent parser for the SELECT dialect.
type Parser struct {
	lex  *Lexer
	tok  Token
	peek *Token
}

// Parse parses a single SELECT statement (optionally ;-terminated).
func Parse(input string) (*SelectStmt, error) {
	p := &Parser{lex: NewLexer(input)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokSemi {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != TokEOF {
		return nil, fmt.Errorf("sql: unexpected %q after statement at offset %d", p.tok.Text, p.tok.Pos)
	}
	return stmt, nil
}

// MustParse parses or panics; for tests and embedded queries.
func MustParse(input string) *SelectStmt {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

func (p *Parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peekTok() (Token, error) {
	if p.peek == nil {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *Parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, kw)
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return fmt.Errorf("sql: expected %s at offset %d, got %q", kw, p.tok.Pos, p.tok.Text)
	}
	return p.advance()
}

func (p *Parser) acceptKeyword(kw string) (bool, error) {
	if p.isKeyword(kw) {
		return true, p.advance()
	}
	return false, nil
}

func (p *Parser) expect(kind TokenKind, what string) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, fmt.Errorf("sql: expected %s at offset %d, got %q", what, p.tok.Pos, p.tok.Text)
	}
	t := p.tok
	return t, p.advance()
}

// reservedAfterPrimary lists keywords that terminate an implicit alias.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "having": true,
	"order": true, "limit": true, "union": true, "join": true, "inner": true,
	"on": true, "as": true, "is": true, "and": true, "or": true, "not": true,
	"between": true, "in": true, "like": true, "null": true, "case": true,
	"when": true, "then": true, "else": true, "end": true, "distinct": true,
	"by": true, "asc": true, "desc": true, "with": true, "left": true,
	"cross": true, "true": true, "false": true,
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		stmt.Distinct = true
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	// FROM.
	if ok, err := p.acceptKeyword("FROM"); err != nil {
		return nil, err
	} else if ok {
		for {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, fi)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	// WHERE.
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	// GROUP BY.
	if ok, err := p.acceptKeyword("GROUP"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	// HAVING.
	if ok, err := p.acceptKeyword("HAVING"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	// ORDER BY.
	if ok, err := p.acceptKeyword("ORDER"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if ok, err := p.acceptKeyword("DESC"); err != nil {
				return nil, err
			} else if ok {
				oi.Desc = true
			} else if ok, err := p.acceptKeyword("ASC"); err != nil {
				return nil, err
			} else {
				_ = ok
			}
			stmt.OrderBy = append(stmt.OrderBy, oi)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	// LIMIT.
	if ok, err := p.acceptKeyword("LIMIT"); err != nil {
		return nil, err
	} else if ok {
		t, err := p.expect(TokNumber, "limit count")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	// UNION ALL.
	if ok, err := p.acceptKeyword("UNION"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, fmt.Errorf("sql: only UNION ALL is supported (bag semantics): %w", err)
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Union = next
	}
	return stmt, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// '*'
	if p.tok.Kind == TokOp && p.tok.Text == "*" {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Star: true}, nil
	}
	// qualifier.*
	if p.tok.Kind == TokIdent {
		pk, err := p.peekTok()
		if err != nil {
			return SelectItem{}, err
		}
		if pk.Kind == TokDot {
			q := p.tok.Text
			save := p.tok
			if err := p.advance(); err != nil { // consume ident
				return SelectItem{}, err
			}
			pk2, err := p.peekTok()
			if err != nil {
				return SelectItem{}, err
			}
			if pk2.Kind == TokOp && pk2.Text == "*" {
				if err := p.advance(); err != nil { // consume dot
					return SelectItem{}, err
				}
				if err := p.advance(); err != nil { // consume *
					return SelectItem{}, err
				}
				return SelectItem{Star: true, Qualifier: q}, nil
			}
			// Not a star: rewind is impossible; parse the rest of the column
			// reference manually and continue as an expression.
			if err := p.advance(); err != nil { // consume dot
				return SelectItem{}, err
			}
			name, err := p.expect(TokIdent, "column name")
			if err != nil {
				return SelectItem{}, err
			}
			e, err := p.continueExpr(ColumnRef{Qualifier: save.Text, Name: name.Text})
			if err != nil {
				return SelectItem{}, err
			}
			return p.finishSelectItem(e)
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return p.finishSelectItem(e)
}

func (p *Parser) finishSelectItem(e Expr) (SelectItem, error) {
	item := SelectItem{Expr: e}
	if ok, err := p.acceptKeyword("AS"); err != nil {
		return SelectItem{}, err
	} else if ok {
		t, err := p.expect(TokIdent, "alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
		return item, nil
	}
	if p.tok.Kind == TokIdent && !reserved[strings.ToLower(p.tok.Text)] {
		item.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	}
	return item, nil
}

func (p *Parser) parseFromItem() (FromItem, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Primary: prim}
	for {
		inner, err := p.acceptKeyword("INNER")
		if err != nil {
			return FromItem{}, err
		}
		if inner {
			if err := p.expectKeyword("JOIN"); err != nil {
				return FromItem{}, err
			}
		} else {
			ok, err := p.acceptKeyword("JOIN")
			if err != nil {
				return FromItem{}, err
			}
			if !ok {
				break
			}
		}
		right, err := p.parsePrimary()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return FromItem{}, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return FromItem{}, err
		}
		fi.Joins = append(fi.Joins, JoinClause{Right: right, On: on})
	}
	return fi, nil
}

func (p *Parser) parsePrimary() (Primary, error) {
	if p.tok.Kind == TokLParen {
		if err := p.advance(); err != nil {
			return Primary{}, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return Primary{}, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return Primary{}, err
		}
		prim := Primary{Subquery: sub}
		// Optional alias.
		if ok, err := p.acceptKeyword("AS"); err != nil {
			return Primary{}, err
		} else if ok {
			t, err := p.expect(TokIdent, "alias")
			if err != nil {
				return Primary{}, err
			}
			prim.Alias = t.Text
		} else if p.tok.Kind == TokIdent && !reserved[strings.ToLower(p.tok.Text)] {
			prim.Alias = p.tok.Text
			if err := p.advance(); err != nil {
				return Primary{}, err
			}
		}
		return prim, nil
	}
	t, err := p.expect(TokIdent, "table name")
	if err != nil {
		return Primary{}, err
	}
	prim := Primary{Table: t.Text, Alias: t.Text}
	// Model annotation and alias, in either order: the paper writes
	// `R IS TI WITH ...` but `R r IS TI WITH ...` is accepted too.
	for {
		if p.isKeyword("IS") && prim.Model == nil {
			if err := p.advance(); err != nil {
				return Primary{}, err
			}
			m, err := p.parseModelAnnotation()
			if err != nil {
				return Primary{}, err
			}
			prim.Model = m
			continue
		}
		if ok, err := p.acceptKeyword("AS"); err != nil {
			return Primary{}, err
		} else if ok {
			a, err := p.expect(TokIdent, "alias")
			if err != nil {
				return Primary{}, err
			}
			prim.Alias = a.Text
			continue
		}
		if p.tok.Kind == TokIdent && !reserved[strings.ToLower(p.tok.Text)] &&
			strings.EqualFold(prim.Alias, prim.Table) {
			prim.Alias = p.tok.Text
			if err := p.advance(); err != nil {
				return Primary{}, err
			}
			continue
		}
		return prim, nil
	}
}

func (p *Parser) parseModelAnnotation() (*ModelAnnotation, error) {
	kindTok, err := p.expect(TokIdent, "model kind")
	if err != nil {
		return nil, err
	}
	m := &ModelAnnotation{}
	switch strings.ToUpper(kindTok.Text) {
	case "TI":
		m.Kind = ModelTI
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("PROBABILITY"); err != nil {
			return nil, err
		}
		attr, err := p.parseParenIdent()
		if err != nil {
			return nil, err
		}
		m.ProbAttr = attr
	case "X":
		m.Kind = ModelX
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("XID"); err != nil {
			return nil, err
		}
		if m.XidAttr, err = p.parseParenIdent(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ALTID"); err != nil {
			return nil, err
		}
		if m.AltAttr, err = p.parseParenIdent(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("PROBABILITY"); err != nil {
			return nil, err
		}
		if m.ProbAttr, err = p.parseParenIdent(); err != nil {
			return nil, err
		}
	case "CTABLE":
		m.Kind = ModelCTable
		if err := p.expectKeyword("WITH"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("VARIABLES"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen, "("); err != nil {
			return nil, err
		}
		for {
			t, err := p.expect(TokIdent, "variable attribute")
			if err != nil {
				return nil, err
			}
			m.VarAttrs = append(m.VarAttrs, t.Text)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("LOCAL"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("CONDITION"); err != nil {
			return nil, err
		}
		if m.CondAttr, err = p.parseParenIdent(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sql: unknown model %q at offset %d", kindTok.Text, kindTok.Pos)
	}
	return m, nil
}

func (p *Parser) parseParenIdent() (string, error) {
	if _, err := p.expect(TokLParen, "("); err != nil {
		return "", err
	}
	t, err := p.expect(TokIdent, "identifier")
	if err != nil {
		return "", err
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return "", err
	}
	return t.Text, nil
}

// --- Expression parsing (precedence climbing) ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: BinOr, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: BinAnd, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Unary{Not: true, E: inner}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return p.continueComparison(left)
}

func (p *Parser) continueComparison(left Expr) (Expr, error) {
	// IS [NOT] NULL
	if p.isKeyword("IS") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		neg := false
		if ok, err := p.acceptKeyword("NOT"); err != nil {
			return nil, err
		} else if ok {
			neg = true
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return IsNull{E: left, Negated: neg}, nil
	}
	// [NOT] BETWEEN / IN / LIKE
	neg := false
	if p.isKeyword("NOT") {
		pk, err := p.peekTok()
		if err != nil {
			return nil, err
		}
		if pk.Kind == TokIdent && (strings.EqualFold(pk.Text, "BETWEEN") ||
			strings.EqualFold(pk.Text, "IN") || strings.EqualFold(pk.Text, "LIKE")) {
			neg = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	switch {
	case p.isKeyword("BETWEEN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Between{E: left, Lo: lo, Hi: hi, Negated: neg}, nil
	case p.isKeyword("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return InList{E: left, List: list, Negated: neg}, nil
	case p.isKeyword("LIKE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Like{E: left, Pattern: pat, Negated: neg}, nil
	}
	if p.tok.Kind == TokOp {
		var op BinOp
		switch p.tok.Text {
		case "=":
			op = BinEq
		case "<>":
			op = BinNe
		case "<":
			op = BinLt
		case "<=":
			op = BinLe
		case ">":
			op = BinGt
		case ">=":
			op = BinGe
		default:
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp && (p.tok.Text == "+" || p.tok.Text == "-" || p.tok.Text == "||") {
		op := BinAdd
		switch p.tok.Text {
		case "-":
			op = BinSub
		case "||":
			op = BinConcat
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokOp && (p.tok.Text == "*" || p.tok.Text == "/" || p.tok.Text == "%") {
		op := BinMul
		switch p.tok.Text {
		case "/":
			op = BinDiv
		case "%":
			op = BinMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TokOp && p.tok.Text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Not: false, E: inner}, nil
	}
	return p.parseAtom()
}

func (p *Parser) parseAtom() (Expr, error) {
	switch p.tok.Kind {
	case TokNumber:
		text := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !strings.ContainsAny(text, ".eE") {
			if n, err := strconv.ParseInt(text, 10, 64); err == nil {
				return Literal{Value: types.NewInt(n)}, nil
			}
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", text)
		}
		return Literal{Value: types.NewFloat(f)}, nil
	case TokString:
		v := types.NewString(p.tok.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Literal{Value: v}, nil
	case TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		switch strings.ToUpper(p.tok.Text) {
		case "NULL":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return Literal{Value: types.Null()}, nil
		case "TRUE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return Literal{Value: types.NewBool(true)}, nil
		case "FALSE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return Literal{Value: types.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		}
		if reserved[strings.ToLower(p.tok.Text)] {
			return nil, fmt.Errorf("sql: unexpected keyword %q at offset %d", p.tok.Text, p.tok.Pos)
		}
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Function call.
		if p.tok.Kind == TokLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			fc := FuncCall{Name: strings.ToLower(name)}
			if p.tok.Kind == TokOp && p.tok.Text == "*" {
				fc.Star = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.tok.Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if p.tok.Kind != TokComma {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if _, err := p.expect(TokRParen, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column.
		if p.tok.Kind == TokDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.expect(TokIdent, "column name")
			if err != nil {
				return nil, err
			}
			return ColumnRef{Qualifier: name, Name: col.Text}, nil
		}
		return ColumnRef{Name: name}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected %q at offset %d", p.tok.Text, p.tok.Pos)
	}
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.advance(); err != nil { // consume CASE
		return nil, err
	}
	c := Case{}
	if !p.isKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.isKeyword("WHEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE without WHEN at offset %d", p.tok.Pos)
	}
	if ok, err := p.acceptKeyword("ELSE"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// continueExpr resumes expression parsing when the select-item lookahead has
// already consumed a qualified column reference.
func (p *Parser) continueExpr(left Expr) (Expr, error) {
	// Rebuild precedence from the comparison level upward: the consumed
	// prefix is always a column reference, a valid "additive" operand, so we
	// thread it through the additive/multiplicative tails first.
	e, err := p.continueAdditive(left)
	if err != nil {
		return nil, err
	}
	e, err = p.continueComparison(e)
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		e = Binary{Op: BinAnd, L: e, R: right}
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = Binary{Op: BinOr, L: e, R: right}
	}
	return e, nil
}

func (p *Parser) continueAdditive(left Expr) (Expr, error) {
	// Multiplicative tail first.
	for p.tok.Kind == TokOp && (p.tok.Text == "*" || p.tok.Text == "/" || p.tok.Text == "%") {
		op := BinMul
		switch p.tok.Text {
		case "/":
			op = BinDiv
		case "%":
			op = BinMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, L: left, R: right}
	}
	for p.tok.Kind == TokOp && (p.tok.Text == "+" || p.tok.Text == "-" || p.tok.Text == "||") {
		op := BinAdd
		switch p.tok.Text {
		case "-":
			op = BinSub
		case "||":
			op = BinConcat
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, L: left, R: right}
	}
	return left, nil
}
