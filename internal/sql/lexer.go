package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind enumerates lexical token categories.
type TokenKind uint8

// The token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokOp // = <> < <= > >= + - * / % ||
	TokComma
	TokDot
	TokLParen
	TokRParen
	TokSemi
)

// Token is one lexical token with its source offset for error messages.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// Lexer tokenizes SQL input.
type Lexer struct {
	input string
	pos   int
}

// NewLexer returns a lexer over input.
func NewLexer(input string) *Lexer { return &Lexer{input: input} }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	for l.pos < len(l.input) {
		c := rune(l.input[l.pos])
		if unicode.IsSpace(c) {
			l.pos++
			continue
		}
		// Line comments.
		if c == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '-' {
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.input) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := l.input[l.pos]
	switch {
	case c == ',':
		l.pos++
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case c == '.':
		// Distinguish ".5" from the qualifier dot.
		if l.pos+1 < len(l.input) && l.input[l.pos+1] >= '0' && l.input[l.pos+1] <= '9' {
			return l.lexNumber()
		}
		l.pos++
		return Token{Kind: TokDot, Text: ".", Pos: start}, nil
	case c == '(':
		l.pos++
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case c == ')':
		l.pos++
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case c == ';':
		l.pos++
		return Token{Kind: TokSemi, Text: ";", Pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.input) {
			switch l.input[l.pos] {
			case '\\':
				// Backslash escapes a quote or a backslash; before
				// anything else it is a literal character.
				if l.pos+1 < len(l.input) && (l.input[l.pos+1] == '\'' || l.input[l.pos+1] == '\\') {
					sb.WriteByte(l.input[l.pos+1])
					l.pos += 2
					continue
				}
			case '\'':
				// Doubled quote escapes a quote.
				if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(l.input[l.pos])
			l.pos++
		}
		return Token{}, fmt.Errorf("sql: unterminated string at offset %d", start)
	case c == '"':
		// Quoted identifier.
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.input) && l.input[l.pos] != '"' {
			sb.WriteByte(l.input[l.pos])
			l.pos++
		}
		if l.pos >= len(l.input) {
			return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
		}
		l.pos++
		return Token{Kind: TokIdent, Text: sb.String(), Pos: start}, nil
	case strings.ContainsRune("=<>!+-*/%|", rune(c)):
		op := string(c)
		l.pos++
		if l.pos < len(l.input) {
			two := op + string(l.input[l.pos])
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				op = two
				l.pos++
			}
		}
		if op == "!=" {
			op = "<>"
		}
		if op == "!" {
			return Token{}, fmt.Errorf("sql: stray '!' at offset %d", start)
		}
		return Token{Kind: TokOp, Text: op, Pos: start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '_' || unicode.IsLetter(rune(c)):
		for l.pos < len(l.input) {
			r := rune(l.input[l.pos])
			if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
				l.pos++
			} else {
				break
			}
		}
		return Token{Kind: TokIdent, Text: l.input[start:l.pos], Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
	}
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			l.pos++
			if l.pos < len(l.input) && (l.input[l.pos] == '+' || l.input[l.pos] == '-') {
				l.pos++
			}
		default:
			return Token{Kind: TokNumber, Text: l.input[start:l.pos], Pos: start}, nil
		}
	}
	return Token{Kind: TokNumber, Text: l.input[start:l.pos], Pos: start}, nil
}

// Tokenize lexes the entire input (diagnostics and tests).
func Tokenize(input string) ([]Token, error) {
	l := NewLexer(input)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
