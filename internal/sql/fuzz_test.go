package sql

// Robustness tests: the parser must return errors, never panic, on
// arbitrary input — including truncations and mutations of valid queries.

import (
	"math/rand"
	"testing"
)

var seedQueries = []string{
	"SELECT a, b AS x FROM t WHERE a > 1 AND b IN (1, 2) ORDER BY x DESC LIMIT 3",
	"SELECT * FROM r IS TI WITH PROBABILITY (p) WHERE q BETWEEN 1 AND 2",
	"SELECT CASE w WHEN 1 THEN 'a' ELSE 'b' END FROM t GROUP BY w HAVING count(*) > 1",
	"SELECT t.a FROM (SELECT a FROM u) t JOIN v ON t.a = v.b UNION ALL SELECT c FROM w",
	"SELECT x FROM r IS CTABLE WITH VARIABLES (v1, v2) LOCAL CONDITION (lc)",
	"SELECT -a * 2 + b % 3, a || b, x IS NOT NULL FROM t WHERE NOT a LIKE 'x%'",
}

func TestParserNeverPanicsOnTruncations(t *testing.T) {
	for _, q := range seedQueries {
		for i := 0; i <= len(q); i++ {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("panic on %q: %v", q[:i], p)
					}
				}()
				_, _ = Parse(q[:i])
			}()
		}
	}
}

func TestParserNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	alphabet := []byte("abcSELECT FROMWHERE()*,.'\"=<>!0123456789+-%|_;")
	for trial := 0; trial < 2000; trial++ {
		q := []byte(seedQueries[rng.Intn(len(seedQueries))])
		// Random point mutations.
		for m := 0; m < rng.Intn(6)+1; m++ {
			q[rng.Intn(len(q))] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on mutated %q: %v", q, p)
				}
			}()
			_, _ = Parse(string(q))
		}()
	}
}

func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		buf := make([]byte, rng.Intn(60))
		for i := range buf {
			buf[i] = byte(rng.Intn(128))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", buf, p)
				}
			}()
			_, _ = Parse(string(buf))
		}()
	}
}
