package algebra

import (
	"testing"

	"repro/internal/types"
)

func iv(v int64) Const    { return Const{V: types.NewInt(v)} }
func fvv(v float64) Const { return Const{V: types.NewFloat(v)} }
func svv(v string) Const  { return Const{V: types.NewString(v)} }
func bv(v bool) Const     { return Const{V: types.NewBool(v)} }
func nullv() Const        { return Const{V: types.Null()} }

func evalB(t *testing.T, e Expr) types.Value {
	t.Helper()
	return e.Eval(nil)
}

func TestKleeneAnd(t *testing.T) {
	cases := []struct {
		l, r Expr
		want string
	}{
		{bv(true), bv(true), "true"},
		{bv(true), bv(false), "false"},
		{bv(false), nullv(), "false"}, // FALSE dominates NULL
		{nullv(), bv(false), "false"},
		{bv(true), nullv(), "NULL"},
		{nullv(), nullv(), "NULL"},
	}
	for i, c := range cases {
		got := evalB(t, Bin{Op: OpAnd, L: c.l, R: c.r})
		if got.String() != c.want {
			t.Errorf("case %d: AND = %s, want %s", i, got, c.want)
		}
	}
}

func TestKleeneOr(t *testing.T) {
	cases := []struct {
		l, r Expr
		want string
	}{
		{bv(false), bv(false), "false"},
		{bv(true), nullv(), "true"}, // TRUE dominates NULL
		{nullv(), bv(true), "true"},
		{bv(false), nullv(), "NULL"},
		{nullv(), nullv(), "NULL"},
	}
	for i, c := range cases {
		got := evalB(t, Bin{Op: OpOr, L: c.l, R: c.r})
		if got.String() != c.want {
			t.Errorf("case %d: OR = %s, want %s", i, got, c.want)
		}
	}
}

func TestNotNull(t *testing.T) {
	if !evalB(t, Not{E: nullv()}).IsNull() {
		t.Error("NOT NULL = NULL")
	}
	if evalB(t, Not{E: bv(false)}).Bool() != true {
		t.Error("NOT FALSE")
	}
}

func TestComparisonsWithNull(t *testing.T) {
	for _, op := range []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if !evalB(t, Bin{Op: op, L: nullv(), R: iv(1)}).IsNull() {
			t.Errorf("NULL %v 1 should be NULL", op)
		}
	}
}

func TestArithmetic(t *testing.T) {
	if evalB(t, Bin{Op: OpAdd, L: iv(2), R: iv(3)}).Int() != 5 {
		t.Error("int add")
	}
	if evalB(t, Bin{Op: OpMul, L: iv(2), R: fvv(1.5)}).Float() != 3 {
		t.Error("mixed mul widens to float")
	}
	if !evalB(t, Bin{Op: OpDiv, L: iv(1), R: iv(0)}).IsNull() {
		t.Error("div by zero -> NULL")
	}
	if !evalB(t, Bin{Op: OpMod, L: fvv(1), R: fvv(0)}).IsNull() {
		t.Error("float mod zero -> NULL")
	}
	if evalB(t, Bin{Op: OpMod, L: fvv(7), R: fvv(2)}).Float() != 1 {
		t.Error("float mod")
	}
	if !evalB(t, Bin{Op: OpAdd, L: svv("a"), R: iv(1)}).IsNull() {
		t.Error("string arithmetic -> NULL")
	}
	if evalB(t, Bin{Op: OpConcat, L: svv("a"), R: iv(1)}).Str() != "a1" {
		t.Error("concat")
	}
	if evalB(t, Neg{E: iv(5)}).Int() != -5 {
		t.Error("neg int")
	}
	if evalB(t, Neg{E: fvv(2.5)}).Float() != -2.5 {
		t.Error("neg float")
	}
	if !evalB(t, Neg{E: svv("x")}).IsNull() {
		t.Error("neg string -> NULL")
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%c%", true},
		{"abc", "%%%", true},
		{"ab", "a_b", false},
		{"naïve", "na_ve", true}, // rune-aware underscore
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
	// NULL propagation.
	e := LikeE{E: nullv(), Pattern: svv("%")}
	if !e.Eval(nil).IsNull() {
		t.Error("NULL LIKE -> NULL")
	}
}

func TestInWithNulls(t *testing.T) {
	// 1 IN (2, NULL) is NULL (maybe the NULL is 1).
	e := InE{E: iv(1), List: []Expr{iv(2), nullv()}}
	if !e.Eval(nil).IsNull() {
		t.Error("IN over NULL list element")
	}
	// 1 IN (1, NULL) is TRUE.
	e = InE{E: iv(1), List: []Expr{iv(1), nullv()}}
	if !e.Eval(nil).Bool() {
		t.Error("match wins over NULL")
	}
	// NOT IN flips.
	e = InE{E: iv(1), List: []Expr{iv(2)}, Negated: true}
	if !e.Eval(nil).Bool() {
		t.Error("NOT IN")
	}
}

func TestBetweenNull(t *testing.T) {
	e := BetweenE{E: nullv(), Lo: iv(1), Hi: iv(2)}
	if !e.Eval(nil).IsNull() {
		t.Error("NULL BETWEEN -> NULL")
	}
	e = BetweenE{E: iv(3), Lo: iv(1), Hi: iv(2), Negated: true}
	if !e.Eval(nil).Bool() {
		t.Error("NOT BETWEEN")
	}
}

func TestCaseNullOperand(t *testing.T) {
	// CASE NULL WHEN NULL THEN 'x' END is NULL: NULL never equals.
	e := CaseExpr{
		Operand: nullv(),
		Whens:   []CaseWhen{{Cond: nullv(), Result: svv("x")}},
	}
	if !e.Eval(nil).IsNull() {
		t.Error("CASE NULL operand")
	}
}

func TestScalarFuncEdgeCases(t *testing.T) {
	if v := (ScalarFunc{Name: "least", Args: []Expr{iv(3), nullv()}}).Eval(nil); !v.IsNull() {
		t.Error("least with NULL")
	}
	if v := (ScalarFunc{Name: "coalesce", Args: []Expr{nullv(), nullv()}}).Eval(nil); !v.IsNull() {
		t.Error("coalesce all NULL")
	}
	if v := (ScalarFunc{Name: "abs", Args: []Expr{svv("x")}}).Eval(nil); !v.IsNull() {
		t.Error("abs of string")
	}
	if v := (ScalarFunc{Name: "nosuch", Args: nil}).Eval(nil); !v.IsNull() {
		t.Error("unknown func")
	}
	if v := (ScalarFunc{Name: "length", Args: []Expr{svv("abc")}}).Eval(nil); v.Int() != 3 {
		t.Error("length")
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(types.Null()) || Truthy(types.NewBool(false)) || Truthy(types.NewInt(1)) {
		t.Error("only TRUE is truthy")
	}
	if !Truthy(types.NewBool(true)) {
		t.Error("TRUE is truthy")
	}
}

func TestExprStrings(t *testing.T) {
	e := Bin{Op: OpAnd,
		L: Bin{Op: OpGt, L: Col{Idx: 0, Name: "a"}, R: iv(1)},
		R: IsNullE{E: Col{Idx: 1, Name: "b"}, Negated: true},
	}
	s := e.String()
	if s == "" || s[0] != '(' {
		t.Errorf("String = %q", s)
	}
	nodes := []Expr{
		Not{E: bv(true)}, Neg{E: iv(1)}, CaseExpr{Whens: []CaseWhen{{Cond: bv(true), Result: iv(1)}}, Else: iv(2)},
		LikeE{E: svv("a"), Pattern: svv("%")}, InE{E: iv(1), List: []Expr{iv(2)}},
		BetweenE{E: iv(1), Lo: iv(0), Hi: iv(2)}, ScalarFunc{Name: "abs", Args: []Expr{iv(-1)}},
	}
	for _, n := range nodes {
		if n.String() == "" {
			t.Errorf("%T renders empty", n)
		}
	}
}
