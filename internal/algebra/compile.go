package algebra

import "repro/internal/types"

// Compilation to closure kernels. Expr.Eval re-discovers the expression's
// shape on every row: one interface dispatch plus one operator switch per
// node per row. Compile walks the tree once and returns closures with the
// shape decisions already taken — per row only the data-dependent work
// (NULL checks, kind checks, the arithmetic itself) remains. The batch
// operators compile their expressions at Open and evaluate whole batches
// through the kernels, which is where batch execution's throughput win over
// row-at-a-time comes from on expression-heavy plans.
//
// Compiled evaluation is semantically identical to Expr.Eval — same SQL
// three-valued logic, same kind coercions, same NULL-on-division-by-zero —
// and the algebra tests pin the two against each other on randomized
// expressions. Node types without a dedicated kernel fall back to the
// node's own Eval method, so Compile is total over all expressions.

// rowFn is a compiled expression: evaluate against one row.
type rowFn func(row []types.Value) types.Value

// Compiled is a compiled expression kernel with batch evaluation methods.
// Beyond the per-row closure, Compile recognizes the two shapes that
// dominate real plans — comparisons and arithmetic whose operands are bare
// columns or constants — and builds whole-batch kernels for them: one loop
// over the batch with the operand reads inlined, no per-row closure calls
// and no Value copies threaded through returns. SelectTruthy and
// EvalStrided/EvalColumn dispatch to the specialized kernel when one
// exists.
type Compiled struct {
	fn       rowFn
	selector func(rows [][]types.Value, sel []int) []int
	strider  func(rows [][]types.Value, dst []types.Value, stride int)

	// Columnar kernels (compile_vec.go): run the same shapes unboxed over
	// typed vectors when the batch is columnar; nil when the shape has no
	// columnar kernel, in which case SelectTruthyVec/EvalVec report !ok and
	// the operators use the row kernels above.
	vecSel     vecSelFn
	vecEval    vecEvalFn
	vecRange   rangeSelFn
	vecStrided stridedArithFn
}

// Compile builds the kernels for e.
func Compile(e Expr) *Compiled {
	return &Compiled{
		fn:         compileFn(e),
		selector:   compileSelector(e),
		strider:    compileStrider(e),
		vecSel:     compileVecSelector(e),
		vecEval:    compileVecEval(e),
		vecRange:   compileVecRange(e),
		vecStrided: compileVecStridedArith(e),
	}
}

// Eval evaluates the compiled expression against one row.
func (c *Compiled) Eval(row []types.Value) types.Value { return c.fn(row) }

// SelectTruthy appends to sel (reusing its capacity; pass sel[:0]) the
// indices of the rows for which the expression evaluates to TRUE under SQL
// three-valued logic — the selection vector a filter compacts its batch
// with.
func (c *Compiled) SelectTruthy(rows [][]types.Value, sel []int) []int {
	if c.selector != nil {
		return c.selector(rows, sel)
	}
	fn := c.fn
	for i, row := range rows {
		if Truthy(fn(row)) {
			sel = append(sel, i)
		}
	}
	return sel
}

// EvalColumn evaluates the expression once per row, appending the results
// to dst (reusing its capacity; pass dst[:0]) in row order.
func (c *Compiled) EvalColumn(rows [][]types.Value, dst []types.Value) []types.Value {
	if c.strider != nil {
		n := len(dst) + len(rows)
		if cap(dst) < n {
			grown := make([]types.Value, n)
			copy(grown, dst)
			dst = grown
		} else {
			dst = dst[:n]
		}
		c.strider(rows, dst[n-len(rows):], 1)
		return dst
	}
	fn := c.fn
	for _, row := range rows {
		dst = append(dst, fn(row))
	}
	return dst
}

// EvalStrided evaluates the expression once per row, storing the i-th
// result at dst[i*stride] — the layout of one column inside a row-major
// output slab.
func (c *Compiled) EvalStrided(rows [][]types.Value, dst []types.Value, stride int) {
	if c.strider != nil {
		c.strider(rows, dst, stride)
		return
	}
	fn := c.fn
	for i, row := range rows {
		dst[i*stride] = fn(row)
	}
}

// CompileAll compiles a slice of expressions.
func CompileAll(es []Expr) []*Compiled {
	cs := make([]*Compiled, len(es))
	for i, e := range es {
		cs[i] = Compile(e)
	}
	return cs
}

// compileFn builds the kernel for one node.
func compileFn(e Expr) rowFn {
	switch ex := e.(type) {
	case Col:
		idx := ex.Idx
		return func(row []types.Value) types.Value { return row[idx] }

	case Const:
		v := ex.V
		return func([]types.Value) types.Value { return v }

	case Bin:
		var l, r rowFn
		switch ex.Op {
		case OpAnd, OpOr, OpConcat:
			l, r = compileFn(ex.L), compileFn(ex.R)
		}
		switch ex.Op {
		case OpAnd:
			return func(row []types.Value) types.Value {
				lv := l(row)
				if isFalse(lv) {
					return types.NewBool(false)
				}
				rv := r(row)
				if isFalse(rv) {
					return types.NewBool(false)
				}
				if lv.IsNull() || rv.IsNull() {
					return types.Null()
				}
				return types.NewBool(true)
			}
		case OpOr:
			return func(row []types.Value) types.Value {
				lv := l(row)
				if isTrue(lv) {
					return types.NewBool(true)
				}
				rv := r(row)
				if isTrue(rv) {
					return types.NewBool(true)
				}
				if lv.IsNull() || rv.IsNull() {
					return types.Null()
				}
				return types.NewBool(false)
			}
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			return compileCmp(ex.Op, compileOperand(ex.L), compileOperand(ex.R))
		case OpConcat:
			return func(row []types.Value) types.Value {
				a, b := l(row), r(row)
				if a.IsNull() || b.IsNull() {
					return types.Null()
				}
				return types.NewString(a.String() + b.String())
			}
		default:
			return compileArith(ex.Op, compileOperand(ex.L), compileOperand(ex.R))
		}

	case Not:
		in := compileFn(ex.E)
		return func(row []types.Value) types.Value {
			v := in(row)
			if v.Kind() != types.KindBool {
				return types.Null()
			}
			return types.NewBool(!v.Bool())
		}

	case IsNullE:
		in := compileFn(ex.E)
		neg := ex.Negated
		return func(row []types.Value) types.Value {
			return types.NewBool(in(row).IsNull() != neg)
		}

	case BetweenE:
		// Desugared exactly as BetweenE.Eval does: lo <= e AND e <= hi with
		// 3VL, then the optional negation of a non-NULL result.
		inner := compileFn(Bin{Op: OpAnd,
			L: Bin{Op: OpGe, L: ex.E, R: ex.Lo},
			R: Bin{Op: OpLe, L: ex.E, R: ex.Hi},
		})
		if !ex.Negated {
			return inner
		}
		return func(row []types.Value) types.Value {
			v := inner(row)
			if v.IsNull() {
				return v
			}
			return types.NewBool(!v.Bool())
		}

	case Neg:
		in := compileFn(ex.E)
		return func(row []types.Value) types.Value {
			v := in(row)
			switch v.Kind() {
			case types.KindInt:
				return types.NewInt(-v.Int())
			case types.KindFloat:
				return types.NewFloat(-v.Float())
			default:
				return types.Null()
			}
		}

	case ScalarFunc:
		args := make([]rowFn, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = compileFn(a)
		}
		switch ex.Name {
		case "least", "greatest":
			// least(Cl, Cr) is the UA rewrite's certainty combination at
			// every join, so this kernel sits on the paper's measured path.
			wantLess := ex.Name == "least"
			return func(row []types.Value) types.Value {
				var best types.Value
				for i, a := range args {
					v := a(row)
					if v.IsNull() {
						return types.Null()
					}
					if i == 0 {
						best = v
						continue
					}
					if c := v.Compare(best); wantLess && c < 0 || !wantLess && c > 0 {
						best = v
					}
				}
				if len(args) == 0 {
					return types.Null()
				}
				return best
			}
		case "coalesce":
			return func(row []types.Value) types.Value {
				for _, a := range args {
					if v := a(row); !v.IsNull() {
						return v
					}
				}
				return types.Null()
			}
		default:
			return ex.Eval
		}

	default:
		// CASE, LIKE, IN: rare in hot loops; the node's own Eval stays the
		// kernel.
		return e.Eval
	}
}

// operand is a compiled binary-operator input with its leaf shape decided
// at compile time: a direct column read, a bound constant, or a general
// kernel. The eval method is small enough to inline into the enclosing
// kernel, so Col and Const operands — the overwhelmingly common case —
// cost a predictable branch instead of a closure call per row.
type operand struct {
	mode uint8 // 0 = general kernel, 1 = column, 2 = constant
	idx  int
	c    types.Value
	fn   rowFn
}

func compileOperand(e Expr) operand {
	switch ex := e.(type) {
	case Col:
		return operand{mode: 1, idx: ex.Idx}
	case Const:
		return operand{mode: 2, c: ex.V}
	default:
		return operand{mode: 0, fn: compileFn(e)}
	}
}

func (o *operand) eval(row []types.Value) types.Value {
	switch o.mode {
	case 1:
		return row[o.idx]
	case 2:
		return o.c
	default:
		return o.fn(row)
	}
}

// cmpFlags reports which Compare signs satisfy a comparison operator.
func cmpFlags(op BinOp) (onLt, onEq, onGt bool) {
	switch op {
	case OpEq:
		onEq = true
	case OpNe:
		onLt, onGt = true, true
	case OpLt:
		onLt = true
	case OpLe:
		onLt, onEq = true, true
	case OpGt:
		onGt = true
	case OpGe:
		onGt, onEq = true, true
	}
	return
}

// compileSelector builds the whole-batch selection kernel for predicates of
// the shape (col|const) cmp (col|const) — the filters the optimizer's
// pushdown produces on scans. Returns nil when the predicate doesn't match,
// in which case SelectTruthy falls back to the per-row kernel. Semantics
// are exactly those of Bin.Eval + Truthy: NULL operands never select.
func compileSelector(e Expr) func([][]types.Value, []int) []int {
	b, ok := e.(Bin)
	if !ok {
		return nil
	}
	switch b.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
	default:
		return nil
	}
	l, r := compileOperand(b.L), compileOperand(b.R)
	if l.mode == 0 || r.mode == 0 {
		return nil
	}
	onLt, onEq, onGt := cmpFlags(b.Op)
	// The common leaf layouts get their own loops so the operand reads are
	// direct indexed loads and the decision logic stays inline — no per-row
	// calls at all on the column-vs-integer-constant path.
	switch {
	case l.mode == 1 && r.mode == 2, l.mode == 2 && r.mode == 1:
		colIdx, cv := l.idx, r.c
		if l.mode == 2 {
			// Normalize to column-on-the-left by flipping the comparison.
			colIdx, cv = r.idx, l.c
			onLt, onGt = onGt, onLt
		}
		if cv.IsNull() {
			// cmp NULL is never TRUE; the selection is statically empty.
			return func(rows [][]types.Value, sel []int) []int { return sel }
		}
		cvIsInt := cv.Kind() == types.KindInt
		var cvFloat float64
		if cvIsInt {
			// Pre-widened like Value.Compare's numeric path, so the fast
			// loop agrees with Eval and the hash-key encoding past 2^53.
			cvFloat = float64(cv.Int())
		}
		return func(rows [][]types.Value, sel []int) []int {
			for i, row := range rows {
				a := row[colIdx]
				if a.IsNull() {
					continue
				}
				var c int
				if cvIsInt && a.Kind() == types.KindInt {
					switch x := float64(a.Int()); {
					case x < cvFloat:
						c = -1
					case x > cvFloat:
						c = 1
					}
				} else {
					c = a.Compare(cv)
				}
				if c < 0 && onLt || c == 0 && onEq || c > 0 && onGt {
					sel = append(sel, i)
				}
			}
			return sel
		}
	case l.mode == 1 && r.mode == 1:
		li, ri := l.idx, r.idx
		return func(rows [][]types.Value, sel []int) []int {
			for i, row := range rows {
				a, b := row[li], row[ri]
				if a.IsNull() || b.IsNull() {
					continue
				}
				var c int
				if a.Kind() == types.KindInt && b.Kind() == types.KindInt {
					// Widened like Value.Compare; see the col-const loop.
					switch x, y := float64(a.Int()), float64(b.Int()); {
					case x < y:
						c = -1
					case x > y:
						c = 1
					}
				} else {
					c = a.Compare(b)
				}
				if c < 0 && onLt || c == 0 && onEq || c > 0 && onGt {
					sel = append(sel, i)
				}
			}
			return sel
		}
	}
	return nil
}

// compileStrider builds the whole-batch projection kernel for bare columns,
// constants, and arithmetic over (col|const) operands — the projections
// left after pruning. Returns nil when the expression doesn't match, in
// which case EvalStrided falls back to the per-row kernel.
func compileStrider(e Expr) func([][]types.Value, []types.Value, int) {
	switch ex := e.(type) {
	case Col:
		idx := ex.Idx
		return func(rows [][]types.Value, dst []types.Value, stride int) {
			for i, row := range rows {
				dst[i*stride] = row[idx]
			}
		}
	case Const:
		v := ex.V
		return func(rows [][]types.Value, dst []types.Value, stride int) {
			for i := range rows {
				dst[i*stride] = v
			}
		}
	case Bin:
		switch ex.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		default:
			return nil
		}
		l, r := compileOperand(ex.L), compileOperand(ex.R)
		if l.mode == 0 || r.mode == 0 {
			return nil
		}
		op := ex.Op
		arith := func(a, b types.Value) types.Value {
			switch {
			case a.IsNull() || b.IsNull() || !a.IsNumeric() || !b.IsNumeric():
				return types.Null()
			case a.Kind() == types.KindInt && b.Kind() == types.KindInt:
				return evalArithInt(op, a.Int(), b.Int())
			default:
				return evalArithFloat(op, a.Float(), b.Float())
			}
		}
		switch {
		case l.mode == 1 && r.mode == 2:
			li, cv := l.idx, r.c
			return func(rows [][]types.Value, dst []types.Value, stride int) {
				for i, row := range rows {
					dst[i*stride] = arith(row[li], cv)
				}
			}
		case l.mode == 2 && r.mode == 1:
			cv, ri := l.c, r.idx
			return func(rows [][]types.Value, dst []types.Value, stride int) {
				for i, row := range rows {
					dst[i*stride] = arith(cv, row[ri])
				}
			}
		case l.mode == 1 && r.mode == 1:
			li, ri := l.idx, r.idx
			return func(rows [][]types.Value, dst []types.Value, stride int) {
				for i, row := range rows {
					dst[i*stride] = arith(row[li], row[ri])
				}
			}
		}
		return func(rows [][]types.Value, dst []types.Value, stride int) {
			for i, row := range rows {
				dst[i*stride] = arith(l.eval(row), r.eval(row))
			}
		}
	default:
		return nil
	}
}

// compileCmp builds a comparison kernel. The ordering decision (which signs
// of Compare satisfy the operator) is taken at compile time; per row an
// int/int fast path skips the generic cross-kind Compare.
func compileCmp(op BinOp, l, r operand) rowFn {
	onLt, onEq, onGt := cmpFlags(op)
	return func(row []types.Value) types.Value {
		a, b := l.eval(row), r.eval(row)
		if a.IsNull() || b.IsNull() {
			return types.Null()
		}
		var c int
		if a.Kind() == types.KindInt && b.Kind() == types.KindInt {
			// Widen to float64 exactly as Value.Compare does, so compiled
			// comparisons agree with Eval and with the hash-key encoding
			// even beyond 2^53 where int64 exactness would diverge.
			switch x, y := float64(a.Int()), float64(b.Int()); {
			case x < y:
				c = -1
			case x > y:
				c = 1
			}
		} else {
			c = a.Compare(b)
		}
		return types.NewBool(c < 0 && onLt || c == 0 && onEq || c > 0 && onGt)
	}
}

// compileArith builds an arithmetic kernel with the operator chosen at
// compile time; semantics (NULL propagation, non-numeric operands, integer
// vs float paths, division by zero) mirror Bin.Eval exactly.
func compileArith(op BinOp, l, r operand) rowFn {
	return func(row []types.Value) types.Value {
		a, b := l.eval(row), r.eval(row)
		if a.IsNull() || b.IsNull() {
			return types.Null()
		}
		if !a.IsNumeric() || !b.IsNumeric() {
			return types.Null()
		}
		if a.Kind() == types.KindInt && b.Kind() == types.KindInt {
			return evalArithInt(op, a.Int(), b.Int())
		}
		return evalArithFloat(op, a.Float(), b.Float())
	}
}
