package algebra

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

// randTypedRows generates rows whose columns each stick to one kind (with
// NULLs mixed in), so FromRows infers typed vectors and the unboxed loops
// actually run; one column stays deliberately mixed-kind to cover the boxed
// ValueVector fallback inside otherwise-typed batches.
func randTypedRows(rng *rand.Rand, arity, n int) [][]types.Value {
	kinds := make([]types.Kind, arity)
	for j := range kinds {
		kinds[j] = []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindBool}[rng.Intn(4)]
	}
	if arity > 0 {
		kinds[arity-1] = types.KindNull // sentinel: mixed column
	}
	rows := make([][]types.Value, n)
	for i := range rows {
		row := make([]types.Value, arity)
		for j, k := range kinds {
			if rng.Intn(6) == 0 {
				row[j] = types.Null()
				continue
			}
			switch k {
			case types.KindInt:
				row[j] = types.NewInt(int64(rng.Intn(9) - 4))
			case types.KindFloat:
				fs := []float64{-2, -0.5, 0, math.Copysign(0, -1), 1.5, math.NaN(), math.Inf(1)}
				row[j] = types.NewFloat(fs[rng.Intn(len(fs))])
			case types.KindString:
				row[j] = types.NewString(string(rune('a' + rng.Intn(3))))
			case types.KindBool:
				row[j] = types.NewBool(rng.Intn(2) == 0)
			default:
				row[j] = randRow(rng, 1)[0] // mixed column
			}
		}
		rows[i] = row
	}
	return rows
}

// checkVecParity pins the columnar kernels of one compiled expression
// against the interpreted Eval over one batch of rows.
func checkVecParity(t *testing.T, e Expr, rows [][]types.Value, arity int) {
	t.Helper()
	prog := Compile(e)
	cols := vector.FromRows(rows, arity)
	vecs := cols.Slice(0, len(rows))

	if sel, ok := prog.SelectTruthyVec(vecs, len(rows), nil); ok {
		var want []int
		for i, row := range rows {
			if Truthy(e.Eval(row)) {
				want = append(want, i)
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("expr %s: vec sel %v, want %v", e, sel, want)
		}
		for i := range sel {
			if sel[i] != want[i] {
				t.Fatalf("expr %s: vec sel %v, want %v", e, sel, want)
			}
		}
	}

	if out, ok := prog.EvalVec(vecs, len(rows)); ok {
		if out.Len() != len(rows) {
			t.Fatalf("expr %s: EvalVec len %d, want %d", e, out.Len(), len(rows))
		}
		for i, row := range rows {
			want, got := e.Eval(row), out.Value(i)
			if want.Kind() != got.Kind() ||
				string(want.AppendKey(nil)) != string(got.AppendKey(nil)) {
				t.Fatalf("expr %s row %d (%v): Eval=%v (%s) EvalVec=%v (%s)",
					e, i, row, want, want.Kind(), got, got.Kind())
			}
		}
	}
}

// TestVecKernelsMatchEvalRandomized fuzzes the columnar kernels against
// Eval on random expressions over typed (and one mixed) columns.
func TestVecKernelsMatchEvalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const arity = 5
	for trial := 0; trial < 600; trial++ {
		e := randExpr(rng, arity, 1+rng.Intn(3))
		rows := randTypedRows(rng, arity, 1+rng.Intn(50))
		checkVecParity(t, e, rows, arity)
	}
}

// TestVecKernelShapes asserts which expression shapes get columnar kernels:
// the hot paths must not silently lose their typed loops.
func TestVecKernelShapes(t *testing.T) {
	col := func(i int) Expr { return Col{Idx: i, Name: "c"} }
	ci := func(v int64) Expr { return Const{V: types.NewInt(v)} }
	hasSel := func(e Expr) bool { return Compile(e).vecSel != nil }
	hasEval := func(e Expr) bool { return Compile(e).vecEval != nil }

	if !hasSel(Bin{Op: OpLt, L: col(0), R: ci(3)}) {
		t.Error("col < const lost its columnar selector")
	}
	if !hasSel(Bin{Op: OpEq, L: Bin{Op: OpMod, L: col(1), R: ci(2)}, R: ci(0)}) {
		t.Error("(col % const) = const lost its columnar selector")
	}
	if !hasSel(Bin{Op: OpGe, L: col(0), R: col(1)}) {
		t.Error("col >= col lost its columnar selector")
	}
	if !hasSel(Bin{Op: OpAnd, L: Bin{Op: OpLt, L: col(0), R: ci(1)}, R: Bin{Op: OpLt, L: col(1), R: ci(1)}}) {
		t.Error("AND of columnar comparisons lost its composed selector")
	}
	if !hasSel(Bin{Op: OpOr, L: Bin{Op: OpLt, L: col(0), R: ci(1)}, R: Bin{Op: OpGe, L: col(1), R: ci(5)}}) {
		t.Error("OR of columnar comparisons lost its composed selector")
	}
	if hasSel(Bin{Op: OpAnd, L: Bin{Op: OpLt, L: col(0), R: ci(1)}, R: IsNullE{E: col(1)}}) {
		t.Error("AND over a non-columnar side unexpectedly grew a selector; update this test")
	}
	if hasSel(Not{E: Bin{Op: OpLt, L: col(0), R: ci(1)}}) {
		t.Error("NOT unexpectedly grew a columnar selector (its TRUE set includes rows the operand left NULL); update this test")
	}
	if !hasEval(Bin{Op: OpAdd, L: col(0), R: col(1)}) {
		t.Error("col + col lost its columnar kernel")
	}
	if !hasEval(ScalarFunc{Name: "least", Args: []Expr{col(0), col(1)}}) {
		t.Error("least(col, col) — the UA certainty combination — lost its columnar kernel")
	}
	if !hasEval(col(2)) || !hasEval(ci(7)) {
		t.Error("bare column / constant lost their columnar kernels")
	}
	if hasEval(ScalarFunc{Name: "coalesce", Args: []Expr{col(0), col(1)}}) {
		t.Error("coalesce unexpectedly grew a columnar kernel; update this test")
	}
	gate := CaseExpr{Whens: []CaseWhen{{Cond: Bin{Op: OpEq, L: col(0), R: ci(1)}, Result: col(1)}}}
	if !hasEval(gate) {
		t.Error("single-branch searched CASE — the attribute-bounds gate — lost its columnar kernel")
	}
	if !hasEval(CaseExpr{Whens: gate.Whens, Else: ci(0)}) {
		t.Error("CASE ... ELSE const lost its columnar kernel")
	}
	if hasEval(CaseExpr{Operand: col(0), Whens: gate.Whens}) {
		t.Error("simple CASE (with operand) unexpectedly grew a columnar kernel; update this test")
	}
}

// TestVecKernelsEdgeCases hits the traps the randomized generator rarely
// lands on precisely: huge-int widening, NaN constants, ±0, division and
// modulo by zero (int and float), kind-mismatched comparisons, and
// least/greatest kind preservation.
func TestVecKernelsEdgeCases(t *testing.T) {
	const big = int64(1) << 53
	intRows := func(vals ...int64) [][]types.Value {
		rows := make([][]types.Value, len(vals))
		for i, v := range vals {
			rows[i] = []types.Value{types.NewInt(v), types.NewInt(vals[len(vals)-1-i])}
		}
		return rows
	}
	floatRows := func(vals ...float64) [][]types.Value {
		rows := make([][]types.Value, len(vals))
		for i, v := range vals {
			rows[i] = []types.Value{types.NewFloat(v), types.NewFloat(vals[len(vals)-1-i])}
		}
		return rows
	}
	col0, col1 := Col{Idx: 0, Name: "a"}, Col{Idx: 1, Name: "b"}

	ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		// Huge ints: 2^53 and 2^53+1 widen to the same float64 and must
		// compare equal, exactly like Eval and the key encoding.
		rows := intRows(big, big+1, -big-1, 0)
		checkVecParity(t, Bin{Op: op, L: col0, R: Const{V: types.NewInt(big + 1)}}, rows, 2)
		checkVecParity(t, Bin{Op: op, L: col0, R: col1}, rows, 2)
		checkVecParity(t, Bin{Op: op, L: col0, R: Const{V: types.NewFloat(float64(big))}}, rows, 2)

		// NaN constant against int and float columns: Compare orders NaN
		// equal to everything.
		nan := Const{V: types.NewFloat(math.NaN())}
		checkVecParity(t, Bin{Op: op, L: col0, R: nan}, rows, 2)
		frows := floatRows(math.NaN(), math.Inf(1), math.Copysign(0, -1), 0, 1.5)
		checkVecParity(t, Bin{Op: op, L: col0, R: nan}, frows, 2)
		checkVecParity(t, Bin{Op: op, L: col0, R: col1}, frows, 2)
		checkVecParity(t, Bin{Op: op, L: col0, R: Const{V: types.NewFloat(0)}}, frows, 2)

		// Kind-mismatched constant: outcome is decided by kind order.
		checkVecParity(t, Bin{Op: op, L: col0, R: Const{V: types.NewString("x")}}, rows, 2)
		checkVecParity(t, Bin{Op: op, L: col0, R: Const{V: types.NewBool(true)}}, rows, 2)
	}

	for _, op := range []BinOp{OpAdd, OpSub, OpMul, OpDiv, OpMod} {
		rows := intRows(7, 0, -3, big, 2)
		checkVecParity(t, Bin{Op: op, L: col0, R: col1}, rows, 2)
		checkVecParity(t, Bin{Op: op, L: col0, R: Const{V: types.NewInt(0)}}, rows, 2)
		checkVecParity(t, Bin{Op: op, L: Const{V: types.NewInt(5)}, R: col1}, rows, 2)
		checkVecParity(t, Bin{Op: op, L: col0, R: Const{V: types.NewFloat(0)}}, rows, 2)
		frows := floatRows(1.5, 0, -2.25, math.Inf(1))
		checkVecParity(t, Bin{Op: op, L: col0, R: col1}, frows, 2)
		checkVecParity(t, Bin{Op: op, L: col0, R: Const{V: types.NewString("x")}}, frows, 2)
	}

	// least/greatest must preserve the winner's kind on mixed int/float
	// operands (generic path) and stay unboxed on homogeneous ones.
	mixed := [][]types.Value{
		{types.NewInt(1), types.NewFloat(1)},
		{types.NewInt(3), types.NewFloat(2.5)},
		{types.Null(), types.NewFloat(0)},
	}
	for _, name := range []string{"least", "greatest"} {
		checkVecParity(t, ScalarFunc{Name: name, Args: []Expr{col0, col1}}, mixed, 2)
		checkVecParity(t, ScalarFunc{Name: name, Args: []Expr{col0, col1}}, intRows(big, big+1, 1, -4), 2)
		checkVecParity(t, ScalarFunc{Name: name, Args: []Expr{col0, col1}},
			floatRows(math.NaN(), 1, -2, 0), 2)
		checkVecParity(t, ScalarFunc{Name: name,
			Args: []Expr{col0, Const{V: types.NewInt(2)}}}, intRows(1, 3, 2), 2)
	}
}

// TestVecCaseAndBoolSelector pins the attribute-bounds hot shapes: composed
// AND/OR selection and single-branch CASE stay unboxed (typed output
// vectors), and the per-kernel scratch survives reuse across batches.
func TestVecCaseAndBoolSelector(t *testing.T) {
	col := func(i int) Expr { return Col{Idx: i, Name: "c"} }
	ci := func(v int64) Expr { return Const{V: types.NewInt(v)} }

	// CASE WHEN c0 = 1 THEN c1 ELSE 0 END over int columns.
	gate := Compile(CaseExpr{
		Whens: []CaseWhen{{Cond: Bin{Op: OpEq, L: col(0), R: ci(1)}, Result: col(1)}},
		Else:  ci(0),
	})
	batch := func(ec, v []int64) []vector.Vector {
		return []vector.Vector{
			vector.NewInt64Vector(ec, nil),
			vector.NewInt64Vector(v, nil),
		}
	}
	out, ok := gate.EvalVec(batch([]int64{1, 0, 1}, []int64{10, 20, 30}), 3)
	if !ok {
		t.Fatal("gate CASE has no columnar kernel")
	}
	iv, isInt := out.(*vector.Int64Vector)
	if !isInt {
		t.Fatalf("gate CASE output is %T, want unboxed *vector.Int64Vector", out)
	}
	if iv.Vals[0] != 10 || iv.Vals[1] != 0 || iv.Vals[2] != 30 {
		t.Fatalf("gate CASE = %v, want [10 0 30]", iv.Vals)
	}
	// Second batch through the same kernel: the condition scratch must reset.
	out, _ = gate.EvalVec(batch([]int64{0, 1}, []int64{7, 8}), 2)
	iv = out.(*vector.Int64Vector)
	if iv.Vals[0] != 0 || iv.Vals[1] != 8 {
		t.Fatalf("gate CASE batch 2 = %v, want [0 8]", iv.Vals)
	}

	// Missing ELSE: non-taken rows are NULL, taken rows unboxed.
	ifEC := Compile(CaseExpr{
		Whens: []CaseWhen{{Cond: Bin{Op: OpEq, L: col(0), R: ci(1)}, Result: col(1)}},
	})
	out, ok = ifEC.EvalVec(batch([]int64{1, 0}, []int64{5, 6}), 2)
	if !ok {
		t.Fatal("ELSE-less CASE has no columnar kernel")
	}
	iv = out.(*vector.Int64Vector)
	if iv.Vals[0] != 5 || !out.Null(1) || out.Null(0) {
		t.Fatalf("ELSE-less CASE = %v (null1=%v), want [5 NULL]", iv.Vals, out.Null(1))
	}

	// (c0 < 3 OR c0 > 7) AND c1 >= 10: composed selection across two batches.
	pred := Compile(Bin{Op: OpAnd,
		L: Bin{Op: OpOr, L: Bin{Op: OpLt, L: col(0), R: ci(3)}, R: Bin{Op: OpGt, L: col(0), R: ci(7)}},
		R: Bin{Op: OpGe, L: col(1), R: ci(10)},
	})
	sel, ok := pred.SelectTruthyVec(batch([]int64{1, 5, 9, 2}, []int64{10, 10, 3, 50}), 4, nil)
	if !ok {
		t.Fatal("composed AND/OR has no columnar selector")
	}
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 3 {
		t.Fatalf("composed selection = %v, want [0 3]", sel)
	}
	sel, _ = pred.SelectTruthyVec(batch([]int64{8}, []int64{11}), 1, sel[:0])
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("composed selection batch 2 = %v, want [0]", sel)
	}
}
