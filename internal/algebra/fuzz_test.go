package algebra

import (
	"math"
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

// FuzzCompileVsEval is the Compile-vs-Eval parity fuzzer CI runs with a
// short -fuzztime budget: the fuzz input is decoded into an expression tree
// plus a batch of typed rows, and every compiled kernel family — per-row
// closure, whole-batch selector/strider, and the unboxed columnar loops —
// must agree with the interpreted Expr.Eval exactly (kind and canonical key
// encoding, not just Compare). Coverage-guided mutation explores operator,
// shape, and data-kind combinations the seeded randomized tests don't
// enumerate.
func FuzzCompileVsEval(f *testing.F) {
	f.Add([]byte{0x01, 0x22, 0x13, 0x05, 0x40, 0x41, 0x42})
	f.Add([]byte{0x30, 0x00, 0xff, 0x7f, 0x12, 0x99, 0x01, 0x02, 0x03, 0x04})
	f.Add([]byte("least-greatest-and-modulo"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := decoder{data: data}
		const arity = 3
		e := d.expr(arity, 3)
		nRows := 1 + int(d.byte())%24
		rows := make([][]types.Value, nRows)
		for i := range rows {
			row := make([]types.Value, arity)
			for j := range row {
				row[j] = d.value()
			}
			rows[i] = row
		}

		prog := Compile(e)
		for _, row := range rows {
			want, got := e.Eval(row), prog.Eval(row)
			if !sameValueFuzz(want, got) {
				t.Fatalf("expr %s row %v: Eval=%v Compiled=%v", e, row, want, got)
			}
		}

		var wantSel []int
		for i, row := range rows {
			if Truthy(e.Eval(row)) {
				wantSel = append(wantSel, i)
			}
		}
		if gotSel := prog.SelectTruthy(rows, nil); !equalSel(gotSel, wantSel) {
			t.Fatalf("expr %s: row sel %v, want %v", e, gotSel, wantSel)
		}

		cols := vector.FromRows(rows, arity).Slice(0, nRows)
		if sel, ok := prog.SelectTruthyVec(cols, nRows, nil); ok && !equalSel(sel, wantSel) {
			t.Fatalf("expr %s: vec sel %v, want %v", e, sel, wantSel)
		}
		if out, ok := prog.EvalVec(cols, nRows); ok {
			for i, row := range rows {
				if want, got := e.Eval(row), out.Value(i); !sameValueFuzz(want, got) {
					t.Fatalf("expr %s row %d: Eval=%v EvalVec=%v", e, i, want, got)
				}
			}
		}
	})
}

// sameValueFuzz requires exact identity: same kind and the same canonical
// key bytes (which distinguish NaN payloads and ±0 where Compare does not).
func sameValueFuzz(a, b types.Value) bool {
	return a.Kind() == b.Kind() && string(a.AppendKey(nil)) == string(b.AppendKey(nil))
}

func equalSel(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decoder turns a fuzz byte string into expression trees and values; it
// yields zeros once the input is exhausted, so every input decodes.
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) byte() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) value() types.Value {
	switch d.byte() % 8 {
	case 0:
		return types.Null()
	case 1:
		return types.NewBool(d.byte()%2 == 0)
	case 2, 3:
		return types.NewInt(int64(d.byte()) - 128)
	case 4:
		// Huge ints around 2^53 exercise the float-widening contract.
		return types.NewInt((int64(1) << 53) + int64(d.byte()%5) - 2)
	case 5:
		fs := []float64{0, math.Copysign(0, -1), 1.5, -2.25, math.NaN(), math.Inf(1), math.Inf(-1), 1e300}
		return types.NewFloat(fs[int(d.byte())%len(fs)])
	case 6:
		return types.NewFloat(float64(int(d.byte())-128) / 4)
	default:
		return types.NewString(string(rune('a' + d.byte()%4)))
	}
}

func (d *decoder) expr(arity, depth int) Expr {
	if depth <= 0 {
		if d.byte()%2 == 0 {
			return Col{Idx: int(d.byte()) % arity, Name: "c"}
		}
		return Const{V: d.value()}
	}
	sub := func() Expr { return d.expr(arity, depth-1) }
	switch d.byte() % 8 {
	case 0, 1:
		ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return Bin{Op: ops[int(d.byte())%len(ops)], L: sub(), R: sub()}
	case 2, 3:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return Bin{Op: ops[int(d.byte())%len(ops)], L: sub(), R: sub()}
	case 4:
		ops := []BinOp{OpAnd, OpOr, OpConcat}
		return Bin{Op: ops[int(d.byte())%len(ops)], L: sub(), R: sub()}
	case 5:
		names := []string{"least", "greatest", "coalesce", "abs"}
		name := names[int(d.byte())%len(names)]
		args := make([]Expr, 1+int(d.byte())%3)
		for i := range args {
			args[i] = sub()
		}
		return ScalarFunc{Name: name, Args: args}
	case 6:
		switch d.byte() % 3 {
		case 0:
			return Not{E: sub()}
		case 1:
			return Neg{E: sub()}
		default:
			return IsNullE{E: sub(), Negated: d.byte()%2 == 0}
		}
	default:
		return BetweenE{E: sub(), Lo: sub(), Hi: sub(), Negated: d.byte()%2 == 0}
	}
}
