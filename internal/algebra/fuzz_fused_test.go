package algebra

import (
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

// FuzzFusedVsUnfused is the fusion twin of FuzzCompileVsEval: it replays the
// exact kernel sequence a FusedPipeline window runs — SelectTruthyVec per
// predicate, ascending intersection of the survivor sets, then
// EvalVecSelStrided of every projection at the surviving positions into one
// strided row buffer — and requires byte-identical results (kind plus
// canonical key encoding) to interpreted row-at-a-time filtering and
// evaluation. NULL propagation through 3VL predicates, div/mod-by-zero,
// NaN comparison arms, and int→float widening past 2^53 all flow through
// the same decoded value pool the kernel fuzzer uses.
func FuzzFusedVsUnfused(f *testing.F) {
	f.Add([]byte{0x01, 0x22, 0x13, 0x05, 0x40, 0x41, 0x42})
	f.Add([]byte{0x02, 0x30, 0x00, 0xff, 0x7f, 0x12, 0x99, 0x01, 0x02, 0x03})
	f.Add([]byte("fused-window-agreement"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := decoder{data: data}
		const arity = 3
		nPreds := int(d.byte()) % 3
		preds := make([]Expr, nPreds)
		for i := range preds {
			preds[i] = d.expr(arity, 2)
		}
		nProjs := 1 + int(d.byte())%3
		projs := make([]Expr, nProjs)
		for i := range projs {
			projs[i] = d.expr(arity, 3)
		}
		nRows := 1 + int(d.byte())%24
		rows := make([][]types.Value, nRows)
		for i := range rows {
			row := make([]types.Value, arity)
			for j := range row {
				row[j] = d.value()
			}
			rows[i] = row
		}

		predProgs := make([]*Compiled, nPreds)
		for i, p := range preds {
			predProgs[i] = Compile(p)
			if !predProgs[i].CanSelectVec() {
				return // fused lowering would decline this chain
			}
		}
		projProgs := make([]*Compiled, nProjs)
		for i, p := range projs {
			projProgs[i] = Compile(p)
			if !projProgs[i].CanEvalVec() {
				return
			}
		}

		// Row-at-a-time reference: sequential filters, interpreted Eval.
		var wantSel []int
		for i, row := range rows {
			keep := true
			for _, p := range preds {
				if !Truthy(p.Eval(row)) {
					keep = false
					break
				}
			}
			if keep {
				wantSel = append(wantSel, i)
			}
		}

		// Fused window: per-predicate vector selection, intersected.
		cols := vector.FromRows(rows, arity).Slice(0, nRows)
		var sel []int
		for i, prog := range predProgs {
			s, ok := prog.SelectTruthyVec(cols, nRows, nil)
			if !ok {
				t.Fatalf("pred %s: CanSelectVec true but SelectTruthyVec declined", preds[i])
			}
			if i == 0 {
				sel = s
			} else {
				sel = intersectSorted(sel, s)
			}
		}
		if nPreds == 0 {
			sel = make([]int, nRows)
			for i := range sel {
				sel[i] = i
			}
		}
		if !equalSel(sel, wantSel) {
			t.Fatalf("preds %v: fused sel %v, want %v", preds, sel, wantSel)
		}
		if len(sel) == 0 {
			return // the pipeline skips empty windows before projecting
		}

		// Projection at the surviving positions, strided like the pipeline's
		// output buffer; full windows take the stride path sel-free windows use.
		buf := make([]types.Value, len(sel)*nProjs)
		for j, prog := range projProgs {
			var ok bool
			if len(sel) == nRows {
				ok = prog.EvalVecStrided(cols, nRows, buf[j:], nProjs)
			} else {
				ok = prog.EvalVecSelStrided(cols, nRows, sel, buf[j:], nProjs)
			}
			if !ok {
				t.Fatalf("proj %s: CanEvalVec true but strided eval declined", projs[j])
			}
		}
		for r, i := range sel {
			for j, p := range projs {
				want, got := p.Eval(rows[i]), buf[r*nProjs+j]
				if !sameValueFuzz(want, got) {
					t.Fatalf("proj %s row %d: Eval=%v fused=%v", p, i, want, got)
				}
			}
		}
	})
}

// intersectSorted returns the values present in both ascending slices.
func intersectSorted(a, b []int) []int {
	var out []int
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) {
			break
		}
		if b[j] == x {
			out = append(out, x)
		}
	}
	return out
}
