// Package algebra defines the logical relational algebra the engine executes
// and the rewriter transforms: plan nodes (scan, filter, project, join,
// union-all, aggregate, sort, limit, distinct) over compiled row expressions
// with SQL three-valued logic. Expressions are compiled — column references
// are positional — so plans are self-contained and cheap to evaluate.
package algebra

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/types"
)

// Expr is a compiled scalar expression evaluated against a row. NULL
// propagates per SQL three-valued logic: comparisons and arithmetic with a
// NULL operand yield NULL, AND/OR/NOT follow Kleene logic.
type Expr interface {
	Eval(row []types.Value) types.Value
	fmt.Stringer
}

// Col references a column by position; Name is retained for display.
type Col struct {
	Idx  int
	Name string
}

// Eval implements Expr.
func (e Col) Eval(row []types.Value) types.Value { return row[e.Idx] }

// String renders the column name and position.
func (e Col) String() string { return fmt.Sprintf("%s#%d", e.Name, e.Idx) }

// Const is a literal.
type Const struct{ V types.Value }

// Eval implements Expr.
func (e Const) Eval([]types.Value) types.Value { return e.V }

// String renders the constant.
func (e Const) String() string {
	if e.V.Kind() == types.KindString {
		return "'" + e.V.String() + "'"
	}
	return e.V.String()
}

// BinOp enumerates compiled binary operators.
type BinOp uint8

// The compiled binary operators.
const (
	OpAnd BinOp = iota
	OpOr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
)

var binNames = map[BinOp]string{
	OpAnd: "AND", OpOr: "OR", OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpMod: "%", OpConcat: "||",
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// String renders the operation.
func (e Bin) String() string { return fmt.Sprintf("(%s %s %s)", e.L, binNames[e.Op], e.R) }

// Eval implements Expr.
func (e Bin) Eval(row []types.Value) types.Value {
	switch e.Op {
	case OpAnd:
		l := e.L.Eval(row)
		// Kleene AND with short-circuit on FALSE.
		if isFalse(l) {
			return types.NewBool(false)
		}
		r := e.R.Eval(row)
		if isFalse(r) {
			return types.NewBool(false)
		}
		if l.IsNull() || r.IsNull() {
			return types.Null()
		}
		return types.NewBool(true)
	case OpOr:
		l := e.L.Eval(row)
		if isTrue(l) {
			return types.NewBool(true)
		}
		r := e.R.Eval(row)
		if isTrue(r) {
			return types.NewBool(true)
		}
		if l.IsNull() || r.IsNull() {
			return types.Null()
		}
		return types.NewBool(false)
	}
	l, r := e.L.Eval(row), e.R.Eval(row)
	if l.IsNull() || r.IsNull() {
		return types.Null()
	}
	switch e.Op {
	case OpEq:
		return types.NewBool(l.Compare(r) == 0)
	case OpNe:
		return types.NewBool(l.Compare(r) != 0)
	case OpLt:
		return types.NewBool(l.Compare(r) < 0)
	case OpLe:
		return types.NewBool(l.Compare(r) <= 0)
	case OpGt:
		return types.NewBool(l.Compare(r) > 0)
	case OpGe:
		return types.NewBool(l.Compare(r) >= 0)
	case OpConcat:
		return types.NewString(l.String() + r.String())
	}
	// Arithmetic.
	if !l.IsNumeric() || !r.IsNumeric() {
		return types.Null()
	}
	if l.Kind() == types.KindInt && r.Kind() == types.KindInt {
		return evalArithInt(e.Op, l.Int(), r.Int())
	}
	return evalArithFloat(e.Op, l.Float(), r.Float())
}

// evalArithInt is the integer arithmetic body shared by Bin.Eval and the
// compiled kernels; division and modulo by zero yield NULL.
func evalArithInt(op BinOp, a, b int64) types.Value {
	switch op {
	case OpAdd:
		return types.NewInt(a + b)
	case OpSub:
		return types.NewInt(a - b)
	case OpMul:
		return types.NewInt(a * b)
	case OpDiv:
		if b == 0 {
			return types.Null()
		}
		return types.NewInt(a / b)
	case OpMod:
		if b == 0 {
			return types.Null()
		}
		return types.NewInt(a % b)
	}
	return types.Null()
}

// evalArithFloat is the floating-point arithmetic body shared by Bin.Eval
// and the compiled kernels (integer operands widen).
func evalArithFloat(op BinOp, a, b float64) types.Value {
	switch op {
	case OpAdd:
		return types.NewFloat(a + b)
	case OpSub:
		return types.NewFloat(a - b)
	case OpMul:
		return types.NewFloat(a * b)
	case OpDiv:
		if b == 0 {
			return types.Null()
		}
		return types.NewFloat(a / b)
	case OpMod:
		if b == 0 {
			return types.Null()
		}
		return types.NewFloat(math.Mod(a, b))
	}
	return types.Null()
}

func isTrue(v types.Value) bool  { return v.Kind() == types.KindBool && v.Bool() }
func isFalse(v types.Value) bool { return v.Kind() == types.KindBool && !v.Bool() }

// Truthy reports whether v counts as satisfied in a WHERE clause: TRUE and
// nothing else (NULL/unknown rows are filtered out).
func Truthy(v types.Value) bool { return isTrue(v) }

// Not negates a boolean expression (Kleene: NOT NULL = NULL).
type Not struct{ E Expr }

// Eval implements Expr.
func (e Not) Eval(row []types.Value) types.Value {
	v := e.E.Eval(row)
	if v.IsNull() {
		return types.Null()
	}
	if v.Kind() != types.KindBool {
		return types.Null()
	}
	return types.NewBool(!v.Bool())
}

// String renders the negation.
func (e Not) String() string { return fmt.Sprintf("NOT (%s)", e.E) }

// Neg is numeric negation.
type Neg struct{ E Expr }

// Eval implements Expr.
func (e Neg) Eval(row []types.Value) types.Value {
	v := e.E.Eval(row)
	switch v.Kind() {
	case types.KindInt:
		return types.NewInt(-v.Int())
	case types.KindFloat:
		return types.NewFloat(-v.Float())
	default:
		return types.Null()
	}
}

// String renders the negation.
func (e Neg) String() string { return fmt.Sprintf("-(%s)", e.E) }

// IsNullE tests for NULL; it never returns NULL itself.
type IsNullE struct {
	E       Expr
	Negated bool
}

// Eval implements Expr.
func (e IsNullE) Eval(row []types.Value) types.Value {
	null := e.E.Eval(row).IsNull()
	if e.Negated {
		return types.NewBool(!null)
	}
	return types.NewBool(null)
}

// String renders the test.
func (e IsNullE) String() string {
	if e.Negated {
		return fmt.Sprintf("(%s IS NOT NULL)", e.E)
	}
	return fmt.Sprintf("(%s IS NULL)", e.E)
}

// CaseExpr is a searched or simple CASE.
type CaseExpr struct {
	Operand Expr // nil for searched
	Whens   []CaseWhen
	Else    Expr // nil -> NULL
}

// CaseWhen is one branch.
type CaseWhen struct{ Cond, Result Expr }

// Eval implements Expr.
func (e CaseExpr) Eval(row []types.Value) types.Value {
	var op types.Value
	if e.Operand != nil {
		op = e.Operand.Eval(row)
	}
	for _, w := range e.Whens {
		if e.Operand != nil {
			c := w.Cond.Eval(row)
			if !op.IsNull() && !c.IsNull() && op.Compare(c) == 0 {
				return w.Result.Eval(row)
			}
		} else if Truthy(w.Cond.Eval(row)) {
			return w.Result.Eval(row)
		}
	}
	if e.Else != nil {
		return e.Else.Eval(row)
	}
	return types.Null()
}

// String renders the CASE.
func (e CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if e.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", e.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// LikeE matches SQL LIKE patterns with % (any run) and _ (any single rune).
type LikeE struct {
	E, Pattern Expr
	Negated    bool
}

// Eval implements Expr.
func (e LikeE) Eval(row []types.Value) types.Value {
	v, p := e.E.Eval(row), e.Pattern.Eval(row)
	if v.IsNull() || p.IsNull() {
		return types.Null()
	}
	m := likeMatch(v.String(), p.String())
	if e.Negated {
		m = !m
	}
	return types.NewBool(m)
}

// String renders the predicate.
func (e LikeE) String() string { return fmt.Sprintf("(%s LIKE %s)", e.E, e.Pattern) }

func likeMatch(s, pat string) bool {
	// Iterative two-pointer wildcard match over runes.
	sr, pr := []rune(s), []rune(pat)
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(sr) {
		switch {
		case pi < len(pr) && (pr[pi] == '_' || pr[pi] == sr[si]):
			si++
			pi++
		case pi < len(pr) && pr[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(pr) && pr[pi] == '%' {
		pi++
	}
	return pi == len(pr)
}

// InE tests membership in a literal list.
type InE struct {
	E       Expr
	List    []Expr
	Negated bool
}

// Eval implements Expr.
func (e InE) Eval(row []types.Value) types.Value {
	v := e.E.Eval(row)
	if v.IsNull() {
		return types.Null()
	}
	sawNull := false
	for _, le := range e.List {
		lv := le.Eval(row)
		if lv.IsNull() {
			sawNull = true
			continue
		}
		if v.Compare(lv) == 0 {
			return types.NewBool(!e.Negated)
		}
	}
	if sawNull {
		return types.Null()
	}
	return types.NewBool(e.Negated)
}

// String renders the predicate.
func (e InE) String() string {
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	return fmt.Sprintf("(%s IN (%s))", e.E, strings.Join(parts, ", "))
}

// BetweenE is lo <= e AND e <= hi with 3VL.
type BetweenE struct {
	E, Lo, Hi Expr
	Negated   bool
}

// Eval implements Expr.
func (e BetweenE) Eval(row []types.Value) types.Value {
	inner := Bin{Op: OpAnd,
		L: Bin{Op: OpGe, L: e.E, R: e.Lo},
		R: Bin{Op: OpLe, L: e.E, R: e.Hi},
	}
	v := inner.Eval(row)
	if e.Negated && !v.IsNull() {
		return types.NewBool(!v.Bool())
	}
	return v
}

// String renders the predicate.
func (e BetweenE) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", e.E, e.Lo, e.Hi)
}

// ScalarFunc applies a builtin scalar function: abs, least, greatest,
// coalesce, length, lower, upper.
type ScalarFunc struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (e ScalarFunc) Eval(row []types.Value) types.Value {
	switch e.Name {
	case "abs":
		v := e.Args[0].Eval(row)
		switch v.Kind() {
		case types.KindInt:
			if v.Int() < 0 {
				return types.NewInt(-v.Int())
			}
			return v
		case types.KindFloat:
			return types.NewFloat(math.Abs(v.Float()))
		default:
			return types.Null()
		}
	case "least", "greatest":
		var best types.Value
		first := true
		for _, a := range e.Args {
			v := a.Eval(row)
			if v.IsNull() {
				return types.Null()
			}
			if first {
				best, first = v, false
				continue
			}
			c := v.Compare(best)
			if (e.Name == "least" && c < 0) || (e.Name == "greatest" && c > 0) {
				best = v
			}
		}
		if first {
			return types.Null()
		}
		return best
	case "coalesce":
		for _, a := range e.Args {
			if v := a.Eval(row); !v.IsNull() {
				return v
			}
		}
		return types.Null()
	case "length":
		v := e.Args[0].Eval(row)
		if v.Kind() != types.KindString {
			return types.Null()
		}
		return types.NewInt(int64(len(v.Str())))
	case "lower":
		v := e.Args[0].Eval(row)
		if v.Kind() != types.KindString {
			return types.Null()
		}
		return types.NewString(strings.ToLower(v.Str()))
	case "upper":
		v := e.Args[0].Eval(row)
		if v.Kind() != types.KindString {
			return types.Null()
		}
		return types.NewString(strings.ToUpper(v.Str()))
	default:
		return types.Null()
	}
}

// String renders the call.
func (e ScalarFunc) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// ScalarFuncs lists supported scalar function names.
var ScalarFuncs = map[string]bool{
	"abs": true, "least": true, "greatest": true, "coalesce": true,
	"length": true, "lower": true, "upper": true,
}
