package algebra

import "sort"

// WalkCols visits every column reference in e, in evaluation order.
func WalkCols(e Expr, f func(Col)) {
	switch n := e.(type) {
	case Col:
		f(n)
	case Const:
	case Bin:
		WalkCols(n.L, f)
		WalkCols(n.R, f)
	case Not:
		WalkCols(n.E, f)
	case Neg:
		WalkCols(n.E, f)
	case IsNullE:
		WalkCols(n.E, f)
	case CaseExpr:
		if n.Operand != nil {
			WalkCols(n.Operand, f)
		}
		for _, w := range n.Whens {
			WalkCols(w.Cond, f)
			WalkCols(w.Result, f)
		}
		if n.Else != nil {
			WalkCols(n.Else, f)
		}
	case LikeE:
		WalkCols(n.E, f)
		WalkCols(n.Pattern, f)
	case InE:
		WalkCols(n.E, f)
		for _, x := range n.List {
			WalkCols(x, f)
		}
	case BetweenE:
		WalkCols(n.E, f)
		WalkCols(n.Lo, f)
		WalkCols(n.Hi, f)
	case ScalarFunc:
		for _, a := range n.Args {
			WalkCols(a, f)
		}
	}
}

// ColsUsed returns the sorted, deduplicated column positions referenced by e.
func ColsUsed(e Expr) []int {
	seen := map[int]bool{}
	WalkCols(e, func(c Col) { seen[c.Idx] = true })
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// MapCols returns a copy of e with every column reference replaced by f's
// result. Non-column leaves are preserved; unknown expression types are
// returned unchanged.
func MapCols(e Expr, f func(Col) Expr) Expr {
	switch n := e.(type) {
	case Col:
		return f(n)
	case Const:
		return n
	case Bin:
		return Bin{Op: n.Op, L: MapCols(n.L, f), R: MapCols(n.R, f)}
	case Not:
		return Not{E: MapCols(n.E, f)}
	case Neg:
		return Neg{E: MapCols(n.E, f)}
	case IsNullE:
		return IsNullE{E: MapCols(n.E, f), Negated: n.Negated}
	case CaseExpr:
		out := CaseExpr{}
		if n.Operand != nil {
			out.Operand = MapCols(n.Operand, f)
		}
		for _, w := range n.Whens {
			out.Whens = append(out.Whens, CaseWhen{
				Cond:   MapCols(w.Cond, f),
				Result: MapCols(w.Result, f),
			})
		}
		if n.Else != nil {
			out.Else = MapCols(n.Else, f)
		}
		return out
	case LikeE:
		return LikeE{E: MapCols(n.E, f), Pattern: MapCols(n.Pattern, f), Negated: n.Negated}
	case InE:
		out := InE{E: MapCols(n.E, f), Negated: n.Negated}
		for _, x := range n.List {
			out.List = append(out.List, MapCols(x, f))
		}
		return out
	case BetweenE:
		return BetweenE{
			E:  MapCols(n.E, f),
			Lo: MapCols(n.Lo, f),
			Hi: MapCols(n.Hi, f), Negated: n.Negated,
		}
	case ScalarFunc:
		out := ScalarFunc{Name: n.Name}
		for _, a := range n.Args {
			out.Args = append(out.Args, MapCols(a, f))
		}
		return out
	default:
		return e
	}
}

// ShiftCols returns a copy of e with every column index ≥ threshold shifted
// by delta. The join rewriting and the optimizer use it to re-base compiled
// expressions when columns are interposed or removed.
func ShiftCols(e Expr, threshold, delta int) Expr {
	return MapCols(e, func(c Col) Expr {
		if c.Idx >= threshold {
			return Col{Idx: c.Idx + delta, Name: c.Name}
		}
		return c
	})
}
