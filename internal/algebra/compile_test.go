package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// randExpr generates a random expression over a row of the given arity,
// biased toward the shapes the compiler specializes (column/constant
// comparisons and arithmetic) but covering every node type Compile handles,
// including the fallback ones.
func randExpr(rng *rand.Rand, arity, depth int) Expr {
	randConst := func() Expr {
		switch rng.Intn(5) {
		case 0:
			return Const{V: types.Null()}
		case 1:
			return Const{V: types.NewBool(rng.Intn(2) == 0)}
		case 2:
			return Const{V: types.NewInt(int64(rng.Intn(9) - 4))}
		case 3:
			return Const{V: types.NewFloat(float64(rng.Intn(9)-4) / 2)}
		default:
			return Const{V: types.NewString(string(rune('a' + rng.Intn(3))))}
		}
	}
	if depth <= 0 {
		if rng.Intn(2) == 0 && arity > 0 {
			return Col{Idx: rng.Intn(arity), Name: "c"}
		}
		return randConst()
	}
	sub := func() Expr { return randExpr(rng, arity, depth-1) }
	switch rng.Intn(10) {
	case 0, 1, 2:
		ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return Bin{Op: ops[rng.Intn(len(ops))], L: sub(), R: sub()}
	case 3, 4:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return Bin{Op: ops[rng.Intn(len(ops))], L: sub(), R: sub()}
	case 5:
		ops := []BinOp{OpAnd, OpOr, OpConcat}
		return Bin{Op: ops[rng.Intn(len(ops))], L: sub(), R: sub()}
	case 6:
		switch rng.Intn(3) {
		case 0:
			return Not{E: sub()}
		case 1:
			return Neg{E: sub()}
		default:
			return IsNullE{E: sub(), Negated: rng.Intn(2) == 0}
		}
	case 7:
		return BetweenE{E: sub(), Lo: sub(), Hi: sub(), Negated: rng.Intn(2) == 0}
	case 8:
		names := []string{"least", "greatest", "coalesce", "abs", "length", "lower"}
		name := names[rng.Intn(len(names))]
		nArgs := 1
		if name == "least" || name == "greatest" || name == "coalesce" {
			nArgs = 1 + rng.Intn(3)
		}
		args := make([]Expr, nArgs)
		for i := range args {
			args[i] = sub()
		}
		return ScalarFunc{Name: name, Args: args}
	default:
		// Fallback-path nodes: CASE and IN keep the uncompiled kernel
		// honest.
		if rng.Intn(2) == 0 {
			return CaseExpr{
				Whens: []CaseWhen{{Cond: sub(), Result: sub()}},
				Else:  sub(),
			}
		}
		return InE{E: sub(), List: []Expr{sub(), sub()}, Negated: rng.Intn(2) == 0}
	}
}

func randRow(rng *rand.Rand, arity int) []types.Value {
	row := make([]types.Value, arity)
	for i := range row {
		switch rng.Intn(5) {
		case 0:
			row[i] = types.Null()
		case 1:
			row[i] = types.NewBool(rng.Intn(2) == 0)
		case 2:
			row[i] = types.NewInt(int64(rng.Intn(9) - 4))
		case 3:
			row[i] = types.NewFloat(float64(rng.Intn(9)-4) / 2)
		default:
			row[i] = types.NewString(string(rune('a' + rng.Intn(3))))
		}
	}
	return row
}

// TestCompileMatchesEvalHugeInts pins the comparison fast paths to
// Value.Compare's float64-widening semantics at the 2^53 boundary, where
// exact int64 comparison would diverge from Eval, Compare, and the hash-key
// encoding (2^53 and 2^53+1 are equal once widened).
func TestCompileMatchesEvalHugeInts(t *testing.T) {
	const big = int64(1) << 53
	vals := []types.Value{
		types.NewInt(big), types.NewInt(big + 1), types.NewInt(-big), types.NewInt(-big - 1),
		types.NewFloat(float64(big)), types.NewInt(big - 1),
	}
	ops := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		for _, a := range vals {
			for _, b := range vals {
				exprs := []Expr{
					Bin{Op: op, L: Col{Idx: 0}, R: Col{Idx: 1}},         // col-col selector
					Bin{Op: op, L: Col{Idx: 0}, R: Const{V: b}},         // col-const selector
					Bin{Op: op, L: Const{V: a}, R: Col{Idx: 1}},         // const-col selector
					Bin{Op: op, L: Neg{E: Col{Idx: 0}}, R: Col{Idx: 1}}, // generic kernel
				}
				row := []types.Value{a, b}
				for _, e := range exprs {
					prog := Compile(e)
					want, got := e.Eval(row), prog.Eval(row)
					if want.Compare(got) != 0 || want.Kind() != got.Kind() {
						t.Fatalf("%s on (%v,%v): Eval=%v Compiled=%v", e, a, b, want, got)
					}
					sel := prog.SelectTruthy([][]types.Value{row}, nil)
					if (len(sel) == 1) != Truthy(want) {
						t.Fatalf("%s on (%v,%v): selector %v, Eval %v", e, a, b, sel, want)
					}
				}
			}
		}
	}
}

// TestCompileMatchesEval fuzzes the compiled kernels — per-row closure,
// whole-batch selector, and strided projection — against the interpreted
// Expr.Eval on random expressions and random mixed-kind rows with NULLs.
func TestCompileMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const arity = 4
	for trial := 0; trial < 400; trial++ {
		e := randExpr(rng, arity, 1+rng.Intn(3))
		prog := Compile(e)
		rows := make([][]types.Value, 1+rng.Intn(40))
		for i := range rows {
			rows[i] = randRow(rng, arity)
		}

		// Per-row kernel parity.
		for _, row := range rows {
			want, got := e.Eval(row), prog.Eval(row)
			if want.Compare(got) != 0 || want.Kind() != got.Kind() {
				t.Fatalf("expr %s on row %v: Eval=%v Compiled=%v", e, row, want, got)
			}
		}

		// Selection-vector parity (exercises the specialized selector when
		// the expression shape matches, the generic loop otherwise).
		var wantSel []int
		for i, row := range rows {
			if Truthy(e.Eval(row)) {
				wantSel = append(wantSel, i)
			}
		}
		gotSel := prog.SelectTruthy(rows, nil)
		if len(gotSel) != len(wantSel) {
			t.Fatalf("expr %s: sel %v, want %v", e, gotSel, wantSel)
		}
		for i := range gotSel {
			if gotSel[i] != wantSel[i] {
				t.Fatalf("expr %s: sel %v, want %v", e, gotSel, wantSel)
			}
		}

		// Strided and column evaluation parity.
		const stride = 3
		dst := make([]types.Value, len(rows)*stride)
		prog.EvalStrided(rows, dst, stride)
		col := prog.EvalColumn(rows, nil)
		for i, row := range rows {
			want := e.Eval(row)
			if dst[i*stride].Compare(want) != 0 || dst[i*stride].Kind() != want.Kind() {
				t.Fatalf("expr %s: strided[%d]=%v, want %v", e, i, dst[i*stride], want)
			}
			if col[i].Compare(want) != 0 || col[i].Kind() != want.Kind() {
				t.Fatalf("expr %s: column[%d]=%v, want %v", e, i, col[i], want)
			}
		}
	}
}
