package algebra

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

// ascIntRows builds sorted null-free single-column int rows, so FromRows
// marks the column ascending and the range kernel engages.
func ascIntRows(vals ...int64) [][]types.Value {
	rows := make([][]types.Value, len(vals))
	for i, v := range vals {
		rows[i] = []types.Value{types.NewInt(v)}
	}
	return rows
}

func ascFloatRows(vals ...float64) [][]types.Value {
	rows := make([][]types.Value, len(vals))
	for i, v := range vals {
		rows[i] = []types.Value{types.NewFloat(v)}
	}
	return rows
}

// checkRangeParity pins SelectRangeVec against SelectTruthyVec: whenever the
// range form answers, expanding [lo, hi) must reproduce the scan kernel's
// selection exactly.
func checkRangeParity(t *testing.T, e Expr, rows [][]types.Value) (ranged bool) {
	t.Helper()
	prog := Compile(e)
	cols := vector.FromRows(rows, 1)
	vecs := cols.Slice(0, len(rows))
	lo, hi, ok := prog.SelectRangeVec(vecs, len(rows))
	if !ok {
		return false
	}
	want, _ := prog.SelectTruthyVec(vecs, len(rows), nil)
	if hi < lo {
		hi = lo
	}
	if len(want) != hi-lo {
		t.Fatalf("expr %s over %v: range [%d,%d) selects %d rows, scan selects %d",
			e, rows, lo, hi, hi-lo, len(want))
	}
	for i, w := range want {
		if w != lo+i {
			t.Fatalf("expr %s over %v: range [%d,%d) disagrees with scan sel %v",
				e, rows, lo, hi, want)
		}
	}
	return true
}

// TestSelectRangeVecParityRandomized drives random ascending int and float
// columns (duplicates included) through every comparison op against
// constants around, inside, and outside the value range — each answer
// checked against the scan kernel.
func TestSelectRangeVecParityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []BinOp{OpEq, OpLt, OpLe, OpGt, OpGe}
	ranged := 0
	for trial := 0; trial < 400; trial++ {
		n := rng.Intn(20)
		ivals := make([]int64, n)
		acc := int64(rng.Intn(5)) - 10
		for i := range ivals {
			acc += int64(rng.Intn(3)) // duplicates on purpose
			ivals[i] = acc
		}
		op := ops[rng.Intn(len(ops))]
		c := int64(rng.Intn(25) - 12)
		e := Bin{Op: op, L: Col{Idx: 0, Name: "c"}, R: Const{V: types.NewInt(c)}}
		if checkRangeParity(t, e, ascIntRows(ivals...)) {
			ranged++
		}
		// Same shape flipped: const cmp col must mirror the comparison.
		flipped := Bin{Op: op, L: Const{V: types.NewInt(c)}, R: Col{Idx: 0, Name: "c"}}
		checkRangeParity(t, flipped, ascIntRows(ivals...))

		fvals := make([]float64, n)
		facc := float64(rng.Intn(5)) - 3
		for i := range fvals {
			facc += float64(rng.Intn(3)) * 0.5
			fvals[i] = facc
		}
		fc := []float64{-4, -0.5, 0, math.Copysign(0, -1), 1.5, 2, math.Inf(1), math.Inf(-1)}[rng.Intn(8)]
		fe := Bin{Op: op, L: Col{Idx: 0, Name: "c"}, R: Const{V: types.NewFloat(fc)}}
		if checkRangeParity(t, fe, ascFloatRows(fvals...)) {
			ranged++
		}
		// Int constant against the float column and vice versa: the widening
		// arms must agree with the scan kernel's.
		ie := Bin{Op: op, L: Col{Idx: 0, Name: "c"}, R: Const{V: types.NewInt(c)}}
		checkRangeParity(t, ie, ascFloatRows(fvals...))
		ff := Bin{Op: op, L: Col{Idx: 0, Name: "c"}, R: Const{V: types.NewFloat(fc)}}
		checkRangeParity(t, ff, ascIntRows(ivals...))
	}
	if ranged == 0 {
		t.Fatal("range kernel never engaged; Asc detection or compileVecRange broke")
	}
}

// TestSelectRangeVecEdges pins the specific boundary semantics: NaN and NULL
// constants, huge-int widening, and the shapes that must decline.
func TestSelectRangeVecEdges(t *testing.T) {
	col := Col{Idx: 0, Name: "c"}
	ci := func(v int64) Const { return Const{V: types.NewInt(v)} }

	// NaN constant: every comparison is false; the scan kernel agrees.
	nan := Bin{Op: OpLt, L: col, R: Const{V: types.NewFloat(math.NaN())}}
	checkRangeParity(t, nan, ascIntRows(1, 2, 3))
	checkRangeParity(t, Bin{Op: OpEq, L: col, R: Const{V: types.NewFloat(math.NaN())}},
		ascFloatRows(1, 2, 3))

	// NULL constant selects nothing, and the range form answers that
	// directly (3VL), even on a column with no ascending marking.
	prog := Compile(Bin{Op: OpEq, L: col, R: Const{V: types.Null()}})
	mixed := [][]types.Value{{types.NewInt(3)}, {types.NewInt(1)}}
	vecs := vector.FromRows(mixed, 1).Slice(0, 2)
	if lo, hi, ok := prog.SelectRangeVec(vecs, 2); !ok || lo != hi {
		t.Errorf("NULL const: want empty range, got [%d,%d) ok=%v", lo, hi, ok)
	}

	// Widening past 2^53: the range arms use the same float64 comparison as
	// the scan kernel, so the (lossy) verdicts must still agree.
	huge := int64(1) << 60
	checkRangeParity(t, Bin{Op: OpGe, L: col, R: ci(huge)},
		ascIntRows(huge-2, huge-1, huge, huge+1))

	declines := func(e Expr, rows [][]types.Value, why string) {
		t.Helper()
		p := Compile(e)
		cols := vector.FromRows(rows, 1)
		if _, _, ok := p.SelectRangeVec(cols.Slice(0, len(rows)), len(rows)); ok {
			t.Errorf("range kernel must decline %s", why)
		}
	}
	// Ne selects two ranges; no single-range form.
	declines(Bin{Op: OpNe, L: col, R: ci(2)}, ascIntRows(1, 2, 3), "Ne")
	// Unsorted column: no Asc marking.
	declines(Bin{Op: OpLt, L: col, R: ci(2)}, ascIntRows(3, 1, 2), "an unsorted column")
	// A column with NULLs is never marked ascending.
	declines(Bin{Op: OpLt, L: col, R: ci(2)},
		[][]types.Value{{types.NewInt(1)}, {types.Null()}, {types.NewInt(2)}}, "a null-bearing column")
	// Arithmetic around the column does not preserve ordering in general.
	declines(Bin{Op: OpLt, L: Bin{Op: OpMod, L: col, R: ci(3)}, R: ci(1)},
		ascIntRows(1, 2, 3), "arithmetic over the column")
	// String columns have no range kernel.
	declines(Bin{Op: OpLt, L: col, R: Const{V: types.NewString("b")}},
		[][]types.Value{{types.NewString("a")}, {types.NewString("c")}}, "a string column")
	// col cmp col has no constant to search for.
	declines(Bin{Op: OpLt, L: col, R: col}, ascIntRows(1, 2, 3), "col cmp col")
}

// TestEvalVecStridedParity drives the strided projection kernels — the
// direct arithmetic loops and the boxed-from-vector fallbacks, dense and
// selected — against row-at-a-time Eval, with stride slots in between that
// must stay untouched.
func TestEvalVecStridedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	col := func(i int) Expr { return Col{Idx: i, Name: "c"} }
	exprs := []Expr{
		col(0),                               // bare column copy
		Bin{Op: OpAdd, L: col(0), R: col(1)}, // int ⊕ int direct loop
		Bin{Op: OpSub, L: col(0), R: Const{V: types.NewInt(3)}},
		Bin{Op: OpMul, L: Const{V: types.NewInt(-2)}, R: col(1)},
		Bin{Op: OpDiv, L: col(0), R: col(1)}, // zero divisors → NULL
		Bin{Op: OpMod, L: col(0), R: col(1)},
		Bin{Op: OpAdd, L: col(2), R: col(2)},                               // float ⊕ float
		Bin{Op: OpMul, L: col(0), R: col(2)},                               // int widening into float loop
		Bin{Op: OpDiv, L: col(2), R: Const{V: types.NewFloat(0)}},          // float div by zero → NULL
		Bin{Op: OpAdd, L: col(2), R: Const{V: types.NewInt(1)}},            // int const in float loop
		Bin{Op: OpAdd, L: Bin{Op: OpAdd, L: col(0), R: col(1)}, R: col(0)}, // nested: two-pass path
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		rows := make([][]types.Value, n)
		for i := range rows {
			rows[i] = []types.Value{
				types.NewInt(int64(rng.Intn(9) - 4)),
				types.NewInt(int64(rng.Intn(5) - 2)), // zeros included: div/mod NULLs
				types.NewFloat([]float64{-1.5, 0, 2.25, math.NaN(), math.Inf(1)}[rng.Intn(5)]),
			}
		}
		if trial%4 == 0 {
			rows[rng.Intn(n)][rng.Intn(2)] = types.Null() // null-bearing: direct loops decline
		}
		cols := vector.FromRows(rows, 3)
		vecs := cols.Slice(0, n)
		for _, e := range exprs {
			prog := Compile(e)
			const stride = 2
			dst := make([]types.Value, n*stride)
			if !prog.EvalVecStrided(vecs, n, dst, stride) {
				t.Fatalf("expr %s: no strided kernel", e)
			}
			for i, row := range rows {
				checkSameValue(t, e, i, e.Eval(row), dst[i*stride])
				if !dst[i*stride+1].IsNull() {
					t.Fatalf("expr %s: stride slot %d written", e, i*stride+1)
				}
			}

			var sel []int
			for i := 0; i < n; i += 1 + rng.Intn(3) {
				sel = append(sel, i)
			}
			dstSel := make([]types.Value, len(sel)*stride)
			if !prog.EvalVecSelStrided(vecs, n, sel, dstSel, stride) {
				t.Fatalf("expr %s: no selected strided kernel", e)
			}
			for j, i := range sel {
				checkSameValue(t, e, i, e.Eval(rows[i]), dstSel[j*stride])
			}
		}
	}
}

func checkSameValue(t *testing.T, e Expr, i int, want, got types.Value) {
	t.Helper()
	if want.Kind() != got.Kind() ||
		string(want.AppendKey(nil)) != string(got.AppendKey(nil)) {
		t.Fatalf("expr %s row %d: Eval=%v (%s), strided=%v (%s)",
			e, i, want, want.Kind(), got, got.Kind())
	}
}

// TestSelectRangeVecNotEngagedAfterDecode is the end-to-end half of the
// Asc audit: a column that was ascending at the producer, then crossed the
// wire (or was stitched from chunks), must answer range predicates through
// the scan kernel, not binary search — the decoded vector carries no order
// guarantee, and an adversarially force-set Asc on out-of-order data would
// make the range form silently select wrong rows.
func TestSelectRangeVecNotEngagedAfterDecode(t *testing.T) {
	e := Bin{Op: OpGe, L: Col{Idx: 0, Name: "c"}, R: Const{V: types.NewInt(4)}}
	prog := Compile(e)

	sorted := vector.FromRows(ascIntRows(1, 3, 5, 7), 1)
	if _, _, ok := prog.SelectRangeVec(sorted.Slice(0, 4), 4); !ok {
		t.Fatal("range kernel must engage on a FromRows-ascending column (test premise)")
	}

	// The same sorted data after a wire round-trip: Asc is gone, the range
	// form must decline, and the scan kernel still selects the right rows.
	buf := vector.AppendVector(nil, sorted.Vecs[0])
	dec, _, err := vector.DecodeVector(buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := prog.SelectRangeVec([]vector.Vector{dec}, 4); ok {
		t.Error("range kernel engaged on a wire-decoded column")
	}
	sel, ok := prog.SelectTruthyVec([]vector.Vector{dec}, 4, nil)
	if !ok || len(sel) != 2 || sel[0] != 2 || sel[1] != 3 {
		t.Errorf("scan selection over decoded column = %v (ok=%v), want [2 3]", sel, ok)
	}

	// Force-set Asc on out-of-order decoded data: if decode ever preserved
	// or recomputed the marking wholesale, this is the wrong-rows shape the
	// audit exists to prevent — range and scan must agree, so the kernels
	// are checked against each other.
	shuffled, _, err := vector.DecodeVector(vector.AppendVector(nil,
		vector.NewInt64Vector([]int64{5, 1, 7, 3}, nil)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if tv, isInt := shuffled.(*vector.Int64Vector); isInt {
		if tv.Asc {
			t.Fatal("decode marked an out-of-order column ascending")
		}
		tv.Asc = true // adversarial: simulate a stale marking
		lo, hi, ok := prog.SelectRangeVec([]vector.Vector{tv}, 4)
		if ok {
			// The kernel trusts the marking and binary-searches unsorted
			// data, selecting WRONG rows ([2,4) here — row 3 holds 3, which
			// fails >= 4). This block documents exactly why decode and
			// Concat must keep Asc false; the real assertions are above.
			want, _ := prog.SelectTruthyVec([]vector.Vector{tv}, 4, nil)
			agree := hi-lo == len(want)
			for i := 0; agree && i < len(want); i++ {
				agree = want[i] == lo+i
			}
			if agree {
				t.Log("stale Asc happened to agree with the scan kernel on this data; the hazard is data-dependent")
			}
		}
	} else {
		t.Fatalf("decoded column is %T, want *vector.Int64Vector", shuffled)
	}
}
