package algebra

import (
	"math"
	"sort"
	"strings"

	"repro/internal/types"
	"repro/internal/vector"
)

// Typed columnar kernels. The closure kernels of compile.go still box every
// cell in a types.Value; when the physical layer hands Compile a batch in
// columnar form (internal/vector), the kernels in this file run the hot
// loops — comparisons, arithmetic, least/greatest — directly over the
// unboxed []int64/[]float64/[]string spines instead. Which loop runs is
// decided per batch by a type switch on the operand vectors (one switch per
// batch, not per row); when the runtime column types have no dedicated loop
// a generic element-wise loop over boxed reads keeps the kernel total, and
// when the *expression shape* has no columnar kernel at all the caller falls
// back to the row kernels.
//
// Semantics are bit-for-bit those of Expr.Eval: integer comparisons widen to
// float64 exactly like Value.Compare, arithmetic mirrors
// evalArithInt/evalArithFloat (division and modulo by zero yield NULL, for
// floats too), NULL operands poison comparisons and arithmetic, and
// least/greatest return the winning operand unchanged, kind and all. The
// parity tests and the CI fuzzer pin every loop against Eval.

// vecSelFn appends the selected row indices for one columnar batch.
type vecSelFn func(cols []vector.Vector, n int, sel []int) []int

// vecEvalFn evaluates the expression over one columnar batch.
type vecEvalFn func(cols []vector.Vector, n int) vector.Vector

// SelectTruthyVec is SelectTruthy over a columnar batch: it appends to sel
// (pass sel[:0]) the indices of rows where the expression is TRUE. ok
// reports whether a columnar kernel exists for the expression's shape; when
// false the caller must use the row path.
func (c *Compiled) SelectTruthyVec(cols []vector.Vector, n int, sel []int) (_ []int, ok bool) {
	if c.vecSel == nil {
		return sel, false
	}
	return c.vecSel(cols, n, sel), true
}

// EvalVec evaluates the expression once per row of a columnar batch,
// returning the results as a vector (possibly a zero-copy passthrough of an
// input column). ok reports whether a columnar kernel exists for the
// expression's shape.
func (c *Compiled) EvalVec(cols []vector.Vector, n int) (_ vector.Vector, ok bool) {
	if c.vecEval == nil {
		return nil, false
	}
	return c.vecEval(cols, n), true
}

// EvalVecSel is EvalVec restricted to a selection: the expression is
// evaluated through the unboxed columnar kernel over the whole window (the
// kernels are element-wise and total, so evaluating rows a filter discarded
// cannot change the surviving rows' results) and the selected rows are
// gathered into a fresh unboxed vector — no cell is ever boxed. This is the
// projection half of a fused chain draining to a columnar result sink under
// a scattered selection. Returns false when the expression has no columnar
// kernel.
func (c *Compiled) EvalVecSel(cols []vector.Vector, n int, sel []int) (_ vector.Vector, ok bool) {
	if c.vecEval == nil {
		return nil, false
	}
	return c.vecEval(cols, n).Gather(sel), true
}

// CanEvalVec reports whether the expression has a columnar kernel (EvalVec
// and EvalVecStrided will succeed).
func (c *Compiled) CanEvalVec() bool { return c.vecEval != nil }

// CanSelectVec reports whether the expression has a columnar selection
// kernel (SelectTruthyVec will succeed). The fused-pipeline lowering asks
// before committing a plan to the single-loop executor.
func (c *Compiled) CanSelectVec() bool { return c.vecSel != nil }

// EvalVecSelStrided is EvalVecStrided restricted to a selection: the
// expression is evaluated through the unboxed columnar kernel over the whole
// window (vector arithmetic is element-wise and total — division by zero
// yields NULL, never a fault — so evaluating rows a filter discarded cannot
// change the surviving rows' results), and only the selected rows are boxed,
// the j-th selected row's value landing at dst[j*stride]. This is the
// projection half of the fused scan→filter→project loop: source columns are
// read once and output Values are written once, with neither a gather of the
// surviving rows nor an intermediate batch in between. Returns false (dst
// untouched) when the expression has no columnar kernel.
func (c *Compiled) EvalVecSelStrided(cols []vector.Vector, n int, sel []int, dst []types.Value, stride int) bool {
	if c.vecEval == nil {
		return false
	}
	stridedFromVectorSel(c.vecEval(cols, n), sel, dst, stride)
	return true
}

// EvalVecStrided is EvalStrided over a columnar batch: it evaluates through
// the unboxed columnar kernel and writes the boxed results at dst[i*stride]
// in one typed loop. Projections headed for row consumers use it to fuse
// typed evaluation with row-slab construction — the output Values are
// written exactly once, with no intermediate materialization pass. Simple
// arithmetic over null-free numeric columns skips even the intermediate
// result vector: the direct kernel computes and boxes in one loop. Returns
// false (dst untouched) when the expression has no columnar kernel.
func (c *Compiled) EvalVecStrided(cols []vector.Vector, n int, dst []types.Value, stride int) bool {
	if c.vecStrided != nil && c.vecStrided(cols, n, dst, stride) {
		return true
	}
	if c.vecEval == nil {
		return false
	}
	stridedFromVector(c.vecEval(cols, n), n, dst, stride)
	return true
}

// stridedArithFn computes an arithmetic node and boxes the results straight
// into a strided destination, no intermediate result vector. Returns false
// when this batch's runtime column types don't fit the unboxed loops (the
// caller then goes through vecEval + stridedFromVector, which is total).
type stridedArithFn func(cols []vector.Vector, n int, dst []types.Value, stride int) bool

// compileVecStridedArith builds the direct strided kernel for arithmetic
// whose operands are a bare column or constant — the dominant projection
// shape. Anything deeper keeps the two-pass vecEval path.
func compileVecStridedArith(e Expr) stridedArithFn {
	b, isBin := e.(Bin)
	if !isBin {
		return nil
	}
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
	default:
		return nil
	}
	if !arithLeafOperand(b.L) || !arithLeafOperand(b.R) || !arithHasCol(b) {
		return nil
	}
	op := b.Op
	return func(cols []vector.Vector, n int, dst []types.Value, stride int) bool {
		if la, ra, ok := intSides(b.L, b.R, cols); ok {
			stridedArithInt(op, la, ra, n, dst, stride)
			return true
		}
		if la, ra, ok := floatSides(b.L, b.R, cols); ok {
			stridedArithFloat(op, la, ra, n, dst, stride)
			return true
		}
		return false
	}
}

func arithLeafOperand(e Expr) bool {
	switch e.(type) {
	case Col, Const:
		return true
	}
	return false
}

func arithHasCol(b Bin) bool {
	_, l := b.L.(Col)
	_, r := b.R.(Col)
	return l || r
}

// intStrideSide reads one operand of the direct int loop: a null-free int64
// column (vals non-nil) or an int constant.
type intStrideSide struct {
	vals   []int64
	scalar int64
}

func (s intStrideSide) at(i int) int64 {
	if s.vals != nil {
		return s.vals[i]
	}
	return s.scalar
}

type floatStrideSide struct {
	vals   []float64
	ints   []int64 // int column widening into a float loop
	scalar float64
}

func (s floatStrideSide) at(i int) float64 {
	if s.vals != nil {
		return s.vals[i]
	}
	if s.ints != nil {
		return float64(s.ints[i])
	}
	return s.scalar
}

func intSideOf(e Expr, cols []vector.Vector) (intStrideSide, bool) {
	switch o := e.(type) {
	case Col:
		if v, ok := cols[o.Idx].(*vector.Int64Vector); ok && !v.AnyNull() {
			return intStrideSide{vals: v.Vals}, true
		}
	case Const:
		if o.V.Kind() == types.KindInt {
			return intStrideSide{scalar: o.V.Int()}, true
		}
	}
	return intStrideSide{}, false
}

func intSides(l, r Expr, cols []vector.Vector) (la, ra intStrideSide, ok bool) {
	if la, ok = intSideOf(l, cols); !ok {
		return la, ra, false
	}
	ra, ok = intSideOf(r, cols)
	return la, ra, ok
}

func floatSideOf(e Expr, cols []vector.Vector) (floatStrideSide, bool) {
	switch o := e.(type) {
	case Col:
		switch v := cols[o.Idx].(type) {
		case *vector.Float64Vector:
			if !v.AnyNull() {
				return floatStrideSide{vals: v.Vals}, true
			}
		case *vector.Int64Vector:
			if !v.AnyNull() {
				return floatStrideSide{ints: v.Vals}, true
			}
		}
	case Const:
		if o.V.IsNumeric() {
			return floatStrideSide{scalar: o.V.Float()}, true
		}
	}
	return floatStrideSide{}, false
}

func floatSides(l, r Expr, cols []vector.Vector) (la, ra floatStrideSide, ok bool) {
	if la, ok = floatSideOf(l, cols); !ok {
		return la, ra, false
	}
	ra, ok = floatSideOf(r, cols)
	return la, ra, ok
}

// stridedArithInt mirrors vecArithInt + stridedFromVector in one pass; the
// div/mod zero cases box through evalArithInt, so NULL results match the
// interpreter bit for bit.
func stridedArithInt(op BinOp, l, r intStrideSide, n int, dst []types.Value, stride int) {
	switch op {
	case OpAdd:
		for i := 0; i < n; i++ {
			dst[i*stride] = types.NewInt(l.at(i) + r.at(i))
		}
	case OpSub:
		for i := 0; i < n; i++ {
			dst[i*stride] = types.NewInt(l.at(i) - r.at(i))
		}
	case OpMul:
		for i := 0; i < n; i++ {
			dst[i*stride] = types.NewInt(l.at(i) * r.at(i))
		}
	default: // OpDiv, OpMod
		for i := 0; i < n; i++ {
			dst[i*stride] = evalArithInt(op, l.at(i), r.at(i))
		}
	}
}

// stridedArithFloat mirrors vecArithFloat + stridedFromVector in one pass.
func stridedArithFloat(op BinOp, l, r floatStrideSide, n int, dst []types.Value, stride int) {
	switch op {
	case OpAdd:
		for i := 0; i < n; i++ {
			dst[i*stride] = types.NewFloat(l.at(i) + r.at(i))
		}
	case OpSub:
		for i := 0; i < n; i++ {
			dst[i*stride] = types.NewFloat(l.at(i) - r.at(i))
		}
	case OpMul:
		for i := 0; i < n; i++ {
			dst[i*stride] = types.NewFloat(l.at(i) * r.at(i))
		}
	default: // OpDiv, OpMod
		for i := 0; i < n; i++ {
			dst[i*stride] = evalArithFloat(op, l.at(i), r.at(i))
		}
	}
}

// stridedFromVector boxes a result vector into a strided row-major slab,
// one concrete loop per vector type. NULL slots stay the zero Value.
func stridedFromVector(v vector.Vector, n int, dst []types.Value, stride int) {
	switch tv := v.(type) {
	case *vector.Int64Vector:
		if !tv.AnyNull() {
			for i, x := range tv.Vals {
				dst[i*stride] = types.NewInt(x)
			}
			return
		}
		for i, x := range tv.Vals {
			if tv.Null(i) {
				dst[i*stride] = types.Null()
			} else {
				dst[i*stride] = types.NewInt(x)
			}
		}
	case *vector.Float64Vector:
		if !tv.AnyNull() {
			for i, x := range tv.Vals {
				dst[i*stride] = types.NewFloat(x)
			}
			return
		}
		for i, x := range tv.Vals {
			if tv.Null(i) {
				dst[i*stride] = types.Null()
			} else {
				dst[i*stride] = types.NewFloat(x)
			}
		}
	case *vector.StringVector:
		for i, x := range tv.Vals {
			if tv.Null(i) {
				dst[i*stride] = types.Null()
			} else {
				dst[i*stride] = types.NewString(x)
			}
		}
	case *vector.BoolVector:
		for i, x := range tv.Vals {
			if tv.Null(i) {
				dst[i*stride] = types.Null()
			} else {
				dst[i*stride] = types.NewBool(x)
			}
		}
	case *vector.ValueVector:
		for i, x := range tv.Vals {
			dst[i*stride] = x
		}
	default:
		for i := 0; i < n; i++ {
			dst[i*stride] = v.Value(i)
		}
	}
}

// stridedFromVectorSel boxes the selected rows of a result vector into a
// strided row-major slab: one concrete loop per vector type, exactly the
// boxing rules of stridedFromVector (NULL slots stay the zero Value) applied
// at sel's positions only.
func stridedFromVectorSel(v vector.Vector, sel []int, dst []types.Value, stride int) {
	switch tv := v.(type) {
	case *vector.Int64Vector:
		if !tv.AnyNull() {
			for j, i := range sel {
				dst[j*stride] = types.NewInt(tv.Vals[i])
			}
			return
		}
		for j, i := range sel {
			if tv.Null(i) {
				dst[j*stride] = types.Null()
			} else {
				dst[j*stride] = types.NewInt(tv.Vals[i])
			}
		}
	case *vector.Float64Vector:
		if !tv.AnyNull() {
			for j, i := range sel {
				dst[j*stride] = types.NewFloat(tv.Vals[i])
			}
			return
		}
		for j, i := range sel {
			if tv.Null(i) {
				dst[j*stride] = types.Null()
			} else {
				dst[j*stride] = types.NewFloat(tv.Vals[i])
			}
		}
	case *vector.StringVector:
		for j, i := range sel {
			if tv.Null(i) {
				dst[j*stride] = types.Null()
			} else {
				dst[j*stride] = types.NewString(tv.Vals[i])
			}
		}
	case *vector.BoolVector:
		for j, i := range sel {
			if tv.Null(i) {
				dst[j*stride] = types.Null()
			} else {
				dst[j*stride] = types.NewBool(tv.Vals[i])
			}
		}
	case *vector.ValueVector:
		for j, i := range sel {
			dst[j*stride] = tv.Vals[i]
		}
	default:
		for j, i := range sel {
			dst[j*stride] = v.Value(i)
		}
	}
}

// vecOperand is a compiled operand of a columnar kernel: a constant bound at
// compile time, or a sub-kernel producing a vector per batch (a bare column
// compiles to a zero-copy passthrough).
type vecOperand struct {
	isConst bool
	c       types.Value
	eval    vecEvalFn
}

func compileVecOperand(e Expr) (vecOperand, bool) {
	if c, isC := e.(Const); isC {
		return vecOperand{isConst: true, c: c.V}, true
	}
	if fn := compileVecEval(e); fn != nil {
		return vecOperand{eval: fn}, true
	}
	return vecOperand{}, false
}

// compileVecSelector builds the columnar selection kernel for comparison
// predicates whose operands are themselves columnar-evaluable (bare columns,
// constants, or arithmetic over them — e.g. the UA overhead pipelines'
// "v < 9000" and the expression-heavy "v % 2 = 0"). Returns nil when the
// shape doesn't match.
func compileVecSelector(e Expr) vecSelFn {
	b, isBin := e.(Bin)
	if !isBin {
		return nil
	}
	switch b.Op {
	case OpAnd, OpOr:
		return compileVecBoolSelector(b)
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
	default:
		return nil
	}
	l, lok := compileVecOperand(b.L)
	r, rok := compileVecOperand(b.R)
	if !lok || !rok {
		return nil
	}
	onLt, onEq, onGt := cmpFlags(b.Op)
	switch {
	case l.isConst && r.isConst:
		// Constant comparison: decided once, selects all rows or none.
		keep := Truthy(Bin{Op: b.Op, L: Const{V: l.c}, R: Const{V: r.c}}.Eval(nil))
		return func(_ []vector.Vector, n int, sel []int) []int {
			if keep {
				for i := 0; i < n; i++ {
					sel = append(sel, i)
				}
			}
			return sel
		}
	case r.isConst:
		cv := r.c
		return func(cols []vector.Vector, n int, sel []int) []int {
			return selVecConst(l.eval(cols, n), cv, onLt, onEq, onGt, sel)
		}
	case l.isConst:
		// Normalize to column-on-the-left by flipping the comparison.
		cv := l.c
		return func(cols []vector.Vector, n int, sel []int) []int {
			return selVecConst(r.eval(cols, n), cv, onGt, onEq, onLt, sel)
		}
	default:
		return func(cols []vector.Vector, n int, sel []int) []int {
			return selVecVec(l.eval(cols, n), r.eval(cols, n), onLt, onEq, onGt, sel)
		}
	}
}

// compileVecBoolSelector composes the selection kernels of an AND/OR over
// selector-compilable predicates. Each sub-selector emits the ascending index
// list of rows where its predicate is TRUE; under three-valued logic the rows
// where the conjunction (disjunction) is TRUE are exactly the intersection
// (union) of those lists — FALSE and NULL rows alike stay out, matching
// SelectTruthy. NOT has no such form (the complement of the TRUE set includes
// NULL rows) and stays on the row path.
func compileVecBoolSelector(b Bin) vecSelFn {
	ls := compileVecSelector(b.L)
	rs := compileVecSelector(b.R)
	if ls == nil || rs == nil {
		return nil
	}
	// Sub-results live in per-kernel scratch reused batch to batch, under the
	// arithmetic kernels' lifetime rule (kernels are compiled per Open per
	// operator, so the scratch is single-goroutine by construction).
	var lbuf, rbuf []int
	if b.Op == OpAnd {
		return func(cols []vector.Vector, n int, sel []int) []int {
			lbuf = ls(cols, n, lbuf[:0])
			rbuf = rs(cols, n, rbuf[:0])
			return selIntersect(lbuf, rbuf, sel)
		}
	}
	return func(cols []vector.Vector, n int, sel []int) []int {
		lbuf = ls(cols, n, lbuf[:0])
		rbuf = rs(cols, n, rbuf[:0])
		return selUnion(lbuf, rbuf, sel)
	}
}

// selIntersect appends to sel the elements common to two ascending index
// lists.
func selIntersect(a, b, sel []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			sel = append(sel, a[i])
			i++
			j++
		}
	}
	return sel
}

// selUnion appends to sel the merged distinct elements of two ascending
// index lists.
func selUnion(a, b, sel []int) []int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			sel = append(sel, a[i])
			i++
		case a[i] > b[j]:
			sel = append(sel, b[j])
			j++
		default:
			sel = append(sel, a[i])
			i++
			j++
		}
	}
	sel = append(sel, a[i:]...)
	return append(sel, b[j:]...)
}

// rangeSelFn answers a comparison selection as one contiguous row range
// [lo, hi) instead of an index list. ok=false means the range form does not
// apply to this batch (column not marked ascending, kinds mismatch, Ne) and
// the caller must use the scan kernel.
type rangeSelFn func(cols []vector.Vector, n int) (lo, hi int, ok bool)

// SelectRangeVec answers the compiled predicate's selection over a columnar
// batch as one contiguous range, exploiting an ascending column's ordering
// (vector.Int64Vector.Asc): rows satisfying col cmp const form a contiguous
// zone of a sorted column, found by binary search instead of an O(n) scan
// with an O(n) selection vector. ok=false — no range kernel for the
// expression shape, or none for this batch — means nothing; callers fall
// back to SelectTruthyVec, which is always semantically identical.
func (c *Compiled) SelectRangeVec(cols []vector.Vector, n int) (lo, hi int, ok bool) {
	if c.vecRange == nil {
		return 0, 0, false
	}
	return c.vecRange(cols, n)
}

// compileVecRange builds the range-selection kernel for col cmp const (and
// const cmp col, flipped) predicates. Shapes with arithmetic around the
// column are left to the scan kernel: arithmetic does not in general
// preserve the column's ordering.
func compileVecRange(e Expr) rangeSelFn {
	b, isBin := e.(Bin)
	if !isBin {
		return nil
	}
	switch b.Op {
	case OpEq, OpLt, OpLe, OpGt, OpGe:
		// Ne selects two ranges; no single-range form.
	default:
		return nil
	}
	onLt, onEq, onGt := cmpFlags(b.Op)
	if col, isCol := b.L.(Col); isCol {
		if con, isConst := b.R.(Const); isConst {
			cv := con.V
			return func(cols []vector.Vector, n int) (int, int, bool) {
				return selRangeConst(cols[col.Idx], cv, n, onLt, onEq, onGt)
			}
		}
	}
	if con, isConst := b.L.(Const); isConst {
		if col, isCol := b.R.(Col); isCol {
			cv := con.V
			return func(cols []vector.Vector, n int) (int, int, bool) {
				return selRangeConst(cols[col.Idx], cv, n, onGt, onEq, onLt)
			}
		}
	}
	return nil
}

// selRangeConst resolves v cmp cv over an ascending column by binary search.
// An ascending column splits into three consecutive zones — rows comparing
// below, equal to, and above the constant — located by two searches; the
// comparison arms are exactly selVecConst's, so every boundary case (NaN
// constant landing in the equal zone, int widening past 2^53, ±Inf) yields
// the identical row set.
func selRangeConst(v vector.Vector, cv types.Value, n int, onLt, onEq, onGt bool) (int, int, bool) {
	if cv.IsNull() {
		return 0, 0, true // NULL constant selects nothing (3VL)
	}
	var lo, hi int
	switch tv := v.(type) {
	case *vector.Int64Vector:
		if !tv.Asc || !cv.IsNumeric() {
			return 0, 0, false
		}
		cvf := cv.Float()
		lo = sort.Search(n, func(i int) bool { return !(float64(tv.Vals[i]) < cvf) })
		hi = lo + sort.Search(n-lo, func(i int) bool { return float64(tv.Vals[lo+i]) > cvf })
	case *vector.Float64Vector:
		if !tv.Asc || !cv.IsNumeric() {
			return 0, 0, false
		}
		cvf := cv.Float()
		lo = sort.Search(n, func(i int) bool { return !(tv.Vals[i] < cvf) })
		hi = lo + sort.Search(n-lo, func(i int) bool { return tv.Vals[lo+i] > cvf })
	default:
		return 0, 0, false
	}
	// Zones: [0,lo) below, [lo,hi) equal, [hi,n) above.
	switch {
	case onLt && !onEq && !onGt: // <
		return 0, lo, true
	case onLt && onEq && !onGt: // <=
		return 0, hi, true
	case !onLt && onEq && !onGt: // =
		return lo, hi, true
	case !onLt && onEq && onGt: // >=
		return lo, n, true
	case !onLt && !onEq && onGt: // >
		return hi, n, true
	}
	return 0, 0, false
}

// selVecConst selects the rows where v cmp cv holds, with a dedicated
// unboxed loop per typed vector. NULL never selects (3VL), and a NULL
// constant statically selects nothing.
func selVecConst(v vector.Vector, cv types.Value, onLt, onEq, onGt bool, sel []int) []int {
	if cv.IsNull() {
		return sel
	}
	switch tv := v.(type) {
	case *vector.Int64Vector:
		if !cv.IsNumeric() {
			return selKindMismatch(tv, types.KindInt, cv.Kind(), onLt, onEq, onGt, sel)
		}
		cvf := cv.Float()
		if !tv.AnyNull() {
			for i, x := range tv.Vals {
				// Widen like Value.Compare's numeric path, so the unboxed
				// loop agrees with Eval past 2^53. The NaN-safe equality arm
				// matters even here: cvf may be a NaN constant, which
				// Compare orders equal to everything.
				xf := float64(x)
				if xf < cvf && onLt || xf > cvf && onGt || !(xf < cvf) && !(xf > cvf) && onEq {
					sel = append(sel, i)
				}
			}
			return sel
		}
		for i, x := range tv.Vals {
			if tv.Null(i) {
				continue
			}
			xf := float64(x)
			if xf < cvf && onLt || xf > cvf && onGt || !(xf < cvf) && !(xf > cvf) && onEq {
				sel = append(sel, i)
			}
		}
		return sel
	case *vector.Float64Vector:
		if !cv.IsNumeric() {
			return selKindMismatch(tv, types.KindFloat, cv.Kind(), onLt, onEq, onGt, sel)
		}
		cvf := cv.Float()
		if !tv.AnyNull() {
			for i, x := range tv.Vals {
				// NaN is neither < nor >, so it lands on the onEq arm —
				// exactly Value.Compare's "incomparable floats order equal".
				if x < cvf && onLt || x > cvf && onGt || !(x < cvf) && !(x > cvf) && onEq {
					sel = append(sel, i)
				}
			}
			return sel
		}
		for i, x := range tv.Vals {
			if tv.Null(i) {
				continue
			}
			if x < cvf && onLt || x > cvf && onGt || !(x < cvf) && !(x > cvf) && onEq {
				sel = append(sel, i)
			}
		}
		return sel
	case *vector.StringVector:
		if cv.Kind() != types.KindString {
			return selKindMismatch(tv, types.KindString, cv.Kind(), onLt, onEq, onGt, sel)
		}
		cvs := cv.Str()
		for i, x := range tv.Vals {
			if tv.Null(i) {
				continue
			}
			c := strings.Compare(x, cvs)
			if c < 0 && onLt || c == 0 && onEq || c > 0 && onGt {
				sel = append(sel, i)
			}
		}
		return sel
	case *vector.BoolVector:
		if cv.Kind() != types.KindBool {
			return selKindMismatch(tv, types.KindBool, cv.Kind(), onLt, onEq, onGt, sel)
		}
		cvb := cv.Bool()
		for i, x := range tv.Vals {
			if tv.Null(i) {
				continue
			}
			c := cmpBool(x, cvb)
			if c < 0 && onLt || c == 0 && onEq || c > 0 && onGt {
				sel = append(sel, i)
			}
		}
		return sel
	default:
		for i := 0; i < v.Len(); i++ {
			a := v.Value(i)
			if a.IsNull() {
				continue
			}
			c := a.Compare(cv)
			if c < 0 && onLt || c == 0 && onEq || c > 0 && onGt {
				sel = append(sel, i)
			}
		}
		return sel
	}
}

// selVecVec selects the rows where l cmp r holds element-wise.
func selVecVec(l, r vector.Vector, onLt, onEq, onGt bool, sel []int) []int {
	n := l.Len()
	// Numeric pairs all compare through float64, exactly like Value.Compare;
	// the int64/int64 pair gets its own loop over the raw slices.
	if li, lok := l.(*vector.Int64Vector); lok {
		if ri, rok := r.(*vector.Int64Vector); rok {
			noNulls := !li.AnyNull() && !ri.AnyNull()
			for i, x := range li.Vals {
				if !noNulls && (li.Null(i) || ri.Null(i)) {
					continue
				}
				// int64 widening can't produce NaN, so plain == is exact.
				xf, yf := float64(x), float64(ri.Vals[i])
				if xf < yf && onLt || xf == yf && onEq || xf > yf && onGt {
					sel = append(sel, i)
				}
			}
			return sel
		}
	}
	if lf, lok := floatReader(l); lok {
		if rf, rok := floatReader(r); rok {
			for i := 0; i < n; i++ {
				if l.Null(i) || r.Null(i) {
					continue
				}
				x, y := lf(i), rf(i)
				if x < y && onLt || x > y && onGt || !(x < y) && !(x > y) && onEq {
					sel = append(sel, i)
				}
			}
			return sel
		}
	}
	if ls, lok := l.(*vector.StringVector); lok {
		if rs, rok := r.(*vector.StringVector); rok {
			for i, x := range ls.Vals {
				if ls.Null(i) || rs.Null(i) {
					continue
				}
				c := strings.Compare(x, rs.Vals[i])
				if c < 0 && onLt || c == 0 && onEq || c > 0 && onGt {
					sel = append(sel, i)
				}
			}
			return sel
		}
	}
	// Generic element-wise loop: boxed Compare per row, still one batch-level
	// dispatch. Handles ValueVector fallbacks, bool pairs, and cross-kind
	// typed pairs.
	for i := 0; i < n; i++ {
		a, b := l.Value(i), r.Value(i)
		if a.IsNull() || b.IsNull() {
			continue
		}
		c := a.Compare(b)
		if c < 0 && onLt || c == 0 && onEq || c > 0 && onGt {
			sel = append(sel, i)
		}
	}
	return sel
}

// selKindMismatch handles a typed vector compared against a constant of an
// incomparable kind: Value.Compare orders such pairs by kind, so the
// comparison outcome is one compile-time constant and only NULLs vary.
func selKindMismatch(v vector.Vector, vKind, cKind types.Kind, onLt, onEq, onGt bool, sel []int) []int {
	c := 0
	switch {
	case vKind < cKind:
		c = -1
	case vKind > cKind:
		c = 1
	}
	if !(c < 0 && onLt || c == 0 && onEq || c > 0 && onGt) {
		return sel
	}
	for i := 0; i < v.Len(); i++ {
		if !v.Null(i) {
			sel = append(sel, i)
		}
	}
	return sel
}

// cmpBool mirrors Value.Compare on booleans: false < true.
func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// floatReader returns an unboxed float64 accessor for numeric vectors
// (integers widen, exactly like Value.Float), or ok=false for non-numeric
// ones.
func floatReader(v vector.Vector) (func(i int) float64, bool) {
	switch tv := v.(type) {
	case *vector.Int64Vector:
		vals := tv.Vals
		return func(i int) float64 { return float64(vals[i]) }, true
	case *vector.Float64Vector:
		vals := tv.Vals
		return func(i int) float64 { return vals[i] }, true
	default:
		return nil, false
	}
}

// compileVecEval builds the columnar projection kernel: bare columns pass
// through zero-copy, constants broadcast, arithmetic runs unboxed when the
// operand columns are numeric, and least/greatest — the UA rewrite's
// certainty combination — loops unboxed over same-typed operands. Returns
// nil when the shape doesn't match.
func compileVecEval(e Expr) vecEvalFn {
	switch ex := e.(type) {
	case Col:
		idx := ex.Idx
		return func(cols []vector.Vector, _ int) vector.Vector { return cols[idx] }
	case Const:
		// The broadcast vector is cached in the kernel and rebuilt only when
		// the batch size changes (in practice: full batches, then the tail),
		// under the same batch-lifetime rule as the arithmetic scratch.
		v := ex.V
		var cached vector.Vector
		cachedN := -1
		return func(_ []vector.Vector, n int) vector.Vector {
			if n != cachedN {
				cached, cachedN = constVector(v, n), n
			}
			return cached
		}
	case Bin:
		switch ex.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		default:
			return nil
		}
		l, lok := compileVecOperand(ex.L)
		r, rok := compileVecOperand(ex.R)
		if !lok || !rok {
			return nil
		}
		op := ex.Op
		// Per-kernel output scratch, reused batch to batch: the result
		// vector is valid until the kernel's next invocation, exactly the
		// batch lifetime rule. Kernels are compiled per Open per operator
		// (parallel workers each compile their own), so the scratch is
		// single-goroutine by construction.
		scratch := &arithScratch{}
		return func(cols []vector.Vector, n int) vector.Vector {
			return vecArith(op, l, r, cols, n, scratch)
		}
	case ScalarFunc:
		if (ex.Name != "least" && ex.Name != "greatest") || len(ex.Args) == 0 {
			return nil
		}
		args := make([]vecOperand, len(ex.Args))
		for i, a := range ex.Args {
			var ok bool
			if args[i], ok = compileVecOperand(a); !ok {
				return nil
			}
		}
		wantLess := ex.Name == "least"
		return func(cols []vector.Vector, n int) vector.Vector {
			return vecLeastGreatest(wantLess, args, cols, n)
		}
	case CaseExpr:
		return compileVecCase(ex)
	default:
		return nil
	}
}

// compileVecCase builds the columnar kernel for a searched single-branch
// CASE — the shape the attribute-bounds rewrite leans on for its annotation
// gates (CASE WHEN __ec = 1 THEN e END, CASE WHEN p THEN 1 ELSE 0 END). The
// condition runs through the selection kernels; both branches evaluate over
// the whole window (the vector kernels are total — element-wise, NULL on
// division by zero — so evaluating rows the condition rejects cannot fault or
// change the taken rows' results) and the output merges them row-wise. A
// missing ELSE is an all-NULL branch, exactly Eval's fallthrough.
func compileVecCase(e CaseExpr) vecEvalFn {
	if e.Operand != nil || len(e.Whens) != 1 {
		return nil
	}
	cond := compileVecSelector(e.Whens[0].Cond)
	if cond == nil {
		return nil
	}
	thenOp, ok := compileVecOperand(e.Whens[0].Result)
	if !ok {
		return nil
	}
	var elseOp vecOperand
	hasElse := e.Else != nil
	if hasElse {
		if elseOp, ok = compileVecOperand(e.Else); !ok {
			return nil
		}
	}
	var selBuf []int
	return func(cols []vector.Vector, n int) vector.Vector {
		selBuf = cond(cols, n, selBuf[:0])
		var tv, ev vector.Vector
		if !thenOp.isConst {
			tv = thenOp.eval(cols, n)
		}
		if hasElse && !elseOp.isConst {
			ev = elseOp.eval(cols, n)
		}
		return vecCaseMerge(thenOp, tv, elseOp, ev, hasElse, selBuf, n)
	}
}

// allNullSide is the missing-ELSE branch: NULL at every row.
func allNullSide() arithSide { return arithSide{nullAt: func(int) bool { return true }} }

// vecCaseMerge assembles the CASE output from the taken-row list and the two
// branch results. Both-int sides merge into an Int64Vector and both-float
// sides (strictly float — an int branch must keep its kind) into a
// Float64Vector; any other combination takes the generic boxed loop, which
// preserves each branch value's kind exactly as Eval does.
func vecCaseMerge(thenOp vecOperand, tv vector.Vector, elseOp vecOperand, ev vector.Vector, hasElse bool, sel []int, n int) vector.Vector {
	if ts, ok := resolveNumericSide(thenOp, tv, true); ok {
		es, eok := allNullSide(), true
		if hasElse {
			es, eok = resolveNumericSide(elseOp, ev, true)
		}
		if eok {
			out := make([]int64, n)
			var nulls *vector.Bitmap
			k := 0
			for i := 0; i < n; i++ {
				s := &es
				if k < len(sel) && sel[k] == i {
					s = &ts
					k++
				}
				if s.null(i) {
					if nulls == nil {
						nulls = vector.NewBitmap(n)
					}
					nulls.Set(i)
					continue
				}
				out[i] = s.int(i)
			}
			return vector.NewInt64Vector(out, nulls)
		}
	}
	if ts, ok := resolveFloatStrict(thenOp, tv); ok {
		es, eok := allNullSide(), true
		if hasElse {
			es, eok = resolveFloatStrict(elseOp, ev)
		}
		if eok {
			out := make([]float64, n)
			var nulls *vector.Bitmap
			k := 0
			for i := 0; i < n; i++ {
				s := &es
				if k < len(sel) && sel[k] == i {
					s = &ts
					k++
				}
				if s.null(i) {
					if nulls == nil {
						nulls = vector.NewBitmap(n)
					}
					nulls.Set(i)
					continue
				}
				out[i] = s.float(i)
			}
			return vector.NewFloat64Vector(out, nulls)
		}
	}
	// Generic: boxed row-wise pick, preserving each branch value's kind.
	read := func(o vecOperand, v vector.Vector, i int) types.Value {
		if o.isConst {
			return o.c
		}
		return v.Value(i)
	}
	out := make([]types.Value, n)
	k := 0
	for i := 0; i < n; i++ {
		taken := k < len(sel) && sel[k] == i
		if taken {
			k++
			out[i] = read(thenOp, tv, i)
		} else if hasElse {
			out[i] = read(elseOp, ev, i)
		} // else: stays NULL
	}
	return vector.NewValueVector(out)
}

// resolveFloatStrict binds a branch side that is float64-typed outright — a
// float constant or Float64Vector. Integer sides are rejected rather than
// widened: a CASE branch returns its value kind unchanged, so an int branch
// cannot be merged into a float output without changing semantics.
func resolveFloatStrict(o vecOperand, v vector.Vector) (arithSide, bool) {
	if o.isConst {
		if o.c.Kind() != types.KindFloat {
			return arithSide{}, false
		}
		return arithSide{cF: o.c.Float()}, true
	}
	tv, ok := v.(*vector.Float64Vector)
	if !ok {
		return arithSide{}, false
	}
	s := arithSide{f64: tv.Vals}
	if tv.AnyNull() {
		s.nullAt = tv.Null
	}
	return s, true
}

// constVector broadcasts a constant to n rows. A NULL constant broadcasts as
// zero Values (the zero Value is NULL), costing one zeroed allocation.
func constVector(v types.Value, n int) vector.Vector {
	switch v.Kind() {
	case types.KindInt:
		vals := make([]int64, n)
		c := v.Int()
		for i := range vals {
			vals[i] = c
		}
		return vector.NewInt64Vector(vals, nil)
	case types.KindFloat:
		vals := make([]float64, n)
		c := v.Float()
		for i := range vals {
			vals[i] = c
		}
		return vector.NewFloat64Vector(vals, nil)
	case types.KindString:
		vals := make([]string, n)
		c := v.Str()
		for i := range vals {
			vals[i] = c
		}
		return vector.NewStringVector(vals, nil)
	case types.KindBool:
		vals := make([]bool, n)
		c := v.Bool()
		for i := range vals {
			vals[i] = c
		}
		return vector.NewBoolVector(vals, nil)
	default:
		return vector.NewValueVector(make([]types.Value, n))
	}
}

// arithSide is one resolved operand of an arithmetic loop: exactly one of
// i64/f64/boxed is non-nil for vector operands, or constant payloads are
// bound. nullAt is nil when the side can never be NULL.
type arithSide struct {
	i64    []int64
	f64    []float64
	cI     int64
	cF     float64
	nullAt func(i int) bool
}

func (s *arithSide) int(i int) int64 {
	if s.i64 != nil {
		return s.i64[i]
	}
	return s.cI
}

func (s *arithSide) float(i int) float64 {
	switch {
	case s.f64 != nil:
		return s.f64[i]
	case s.i64 != nil:
		return float64(s.i64[i])
	default:
		return s.cF
	}
}

func (s *arithSide) null(i int) bool { return s.nullAt != nil && s.nullAt(i) }

// resolveNumericSide binds an operand for the unboxed arithmetic loops.
// intOnly additionally requires the side to be integer-typed. ok is false
// when the operand is non-numeric or boxed.
func resolveNumericSide(o vecOperand, v vector.Vector, intOnly bool) (arithSide, bool) {
	if o.isConst {
		switch {
		case o.c.Kind() == types.KindInt:
			return arithSide{cI: o.c.Int(), cF: float64(o.c.Int())}, true
		case o.c.Kind() == types.KindFloat && !intOnly:
			return arithSide{cF: o.c.Float()}, true
		default:
			return arithSide{}, false
		}
	}
	switch tv := v.(type) {
	case *vector.Int64Vector:
		s := arithSide{i64: tv.Vals}
		if tv.AnyNull() {
			s.nullAt = tv.Null
		}
		return s, true
	case *vector.Float64Vector:
		if intOnly {
			return arithSide{}, false
		}
		s := arithSide{f64: tv.Vals}
		if tv.AnyNull() {
			s.nullAt = tv.Null
		}
		return s, true
	default:
		return arithSide{}, false
	}
}

// arithScratch is one arithmetic kernel's reusable output storage. The
// vector headers are reused too (Reset), under the same lifetime rule as the
// element storage: the kernel's result is valid until its next invocation.
type arithScratch struct {
	i64 []int64
	f64 []float64
	iv  *vector.Int64Vector
	fv  *vector.Float64Vector
}

func (s *arithScratch) ints(n int) []int64 {
	if cap(s.i64) < n {
		s.i64 = make([]int64, n)
	}
	return s.i64[:n]
}

func (s *arithScratch) floats(n int) []float64 {
	if cap(s.f64) < n {
		s.f64 = make([]float64, n)
	}
	return s.f64[:n]
}

func (s *arithScratch) intVec(vals []int64, nb *vector.Bitmap) *vector.Int64Vector {
	if s.iv == nil {
		s.iv = &vector.Int64Vector{}
	}
	s.iv.Reset(vals, nb)
	return s.iv
}

func (s *arithScratch) floatVec(vals []float64, nb *vector.Bitmap) *vector.Float64Vector {
	if s.fv == nil {
		s.fv = &vector.Float64Vector{}
	}
	s.fv.Reset(vals, nb)
	return s.fv
}

// vecArith evaluates one arithmetic node over a columnar batch. The int/int
// case runs fully unboxed into an Int64Vector (division and modulo by zero
// set the null bitmap, mirroring evalArithInt); any float operand widens the
// whole loop to float64 (mirroring evalArithFloat, including NULL on
// division by zero); non-numeric typed operands yield all-NULL; everything
// else — a boxed ValueVector operand, whose elements may mix kinds per row —
// takes the generic element-wise loop.
func vecArith(op BinOp, l, r vecOperand, cols []vector.Vector, n int, scratch *arithScratch) vector.Vector {
	var lv, rv vector.Vector
	if !l.isConst {
		lv = l.eval(cols, n)
	}
	if !r.isConst {
		rv = r.eval(cols, n)
	}

	// A NULL or non-numeric constant, or a non-numeric typed vector, makes
	// every row NULL. (Boxed ValueVector operands decide per row below.)
	if constNotIntFloat(l) || constNotIntFloat(r) || vecNonNumeric(lv) || vecNonNumeric(rv) {
		return vector.NewValueVector(make([]types.Value, n))
	}

	if ls, lok := resolveNumericSide(l, lv, true); lok {
		if rs, rok := resolveNumericSide(r, rv, true); rok {
			return vecArithInt(op, ls, rs, n, scratch)
		}
	}
	if ls, lok := resolveNumericSide(l, lv, false); lok {
		if rs, rok := resolveNumericSide(r, rv, false); rok {
			return vecArithFloat(op, ls, rs, n, scratch)
		}
	}

	// Generic: boxed element-wise evaluation (ValueVector operands).
	out := make([]types.Value, n)
	read := func(o vecOperand, v vector.Vector, i int) types.Value {
		if o.isConst {
			return o.c
		}
		return v.Value(i)
	}
	for i := 0; i < n; i++ {
		a, b := read(l, lv, i), read(r, rv, i)
		switch {
		case a.IsNull() || b.IsNull() || !a.IsNumeric() || !b.IsNumeric():
			// out[i] stays NULL
		case a.Kind() == types.KindInt && b.Kind() == types.KindInt:
			out[i] = evalArithInt(op, a.Int(), b.Int())
		default:
			out[i] = evalArithFloat(op, a.Float(), b.Float())
		}
	}
	return vector.NewValueVector(out)
}

// constNotIntFloat reports a constant operand that cannot take the numeric
// arithmetic path: NULL or non-numeric.
func constNotIntFloat(o vecOperand) bool {
	return o.isConst && !o.c.IsNumeric()
}

// vecNonNumeric reports a typed vector of non-numeric kind (boxed fallbacks
// return false: their elements decide per row).
func vecNonNumeric(v vector.Vector) bool {
	switch v.(type) {
	case *vector.StringVector, *vector.BoolVector:
		return true
	default:
		return false
	}
}

// vecArithInt is the unboxed int64 arithmetic loop. The common case — two
// null-free columns under +, -, * — runs with no per-element branches beyond
// the constant-folded op switch and the spill-free slice reads.
func vecArithInt(op BinOp, l, r arithSide, n int, scratch *arithScratch) vector.Vector {
	out := scratch.ints(n)
	var nulls *vector.Bitmap
	setNull := func(i int) {
		if nulls == nil {
			nulls = vector.NewBitmap(n)
		}
		nulls.Set(i)
	}
	for i := 0; i < n; i++ {
		if l.null(i) || r.null(i) {
			setNull(i)
			continue
		}
		a, b := l.int(i), r.int(i)
		switch op {
		case OpAdd:
			out[i] = a + b
		case OpSub:
			out[i] = a - b
		case OpMul:
			out[i] = a * b
		case OpDiv:
			if b == 0 {
				setNull(i)
				continue
			}
			out[i] = a / b
		default: // OpMod
			if b == 0 {
				setNull(i)
				continue
			}
			out[i] = a % b
		}
	}
	return scratch.intVec(out, nulls)
}

// vecArithFloat is the float64 arithmetic loop (integer operands widen).
func vecArithFloat(op BinOp, l, r arithSide, n int, scratch *arithScratch) vector.Vector {
	out := scratch.floats(n)
	var nulls *vector.Bitmap
	setNull := func(i int) {
		if nulls == nil {
			nulls = vector.NewBitmap(n)
		}
		nulls.Set(i)
	}
	for i := 0; i < n; i++ {
		if l.null(i) || r.null(i) {
			setNull(i)
			continue
		}
		a, b := l.float(i), r.float(i)
		switch op {
		case OpAdd:
			out[i] = a + b
		case OpSub:
			out[i] = a - b
		case OpMul:
			out[i] = a * b
		case OpDiv:
			if b == 0 {
				setNull(i)
				continue
			}
			out[i] = a / b
		default: // OpMod
			if b == 0 {
				setNull(i)
				continue
			}
			out[i] = math.Mod(a, b)
		}
	}
	return scratch.floatVec(out, nulls)
}

// vecLeastGreatest evaluates least/greatest over a columnar batch. When
// every operand is int64 (or every operand is float64) the loop runs
// unboxed; anything else takes the generic loop, which returns the winning
// operand's Value unchanged — preserving its kind, as Eval does. Any NULL
// operand makes the row NULL.
func vecLeastGreatest(wantLess bool, args []vecOperand, cols []vector.Vector, n int) vector.Vector {
	vecs := make([]vector.Vector, len(args))
	for i, a := range args {
		if !a.isConst {
			vecs[i] = a.eval(cols, n)
		}
	}

	if sides, homogeneous := resolveAll(args, vecs, true); homogeneous {
		out := make([]int64, n)
		var nulls *vector.Bitmap
	intRows:
		for i := 0; i < n; i++ {
			for j := range sides {
				if sides[j].null(i) {
					if nulls == nil {
						nulls = vector.NewBitmap(n)
					}
					nulls.Set(i)
					continue intRows
				}
			}
			best := sides[0].int(i)
			for j := 1; j < len(sides); j++ {
				v := sides[j].int(i)
				// Compare via float64 widening, matching Value.Compare, so
				// huge-int ties resolve identically to the boxed kernel
				// (the earlier operand wins a tie).
				if bf, vf := float64(best), float64(v); wantLess && vf < bf || !wantLess && vf > bf {
					best = v
				}
			}
			out[i] = best
		}
		return vector.NewInt64Vector(out, nulls)
	}

	if sides, homogeneous := resolveAllFloat(args, vecs); homogeneous {
		out := make([]float64, n)
		var nulls *vector.Bitmap
	floatRows:
		for i := 0; i < n; i++ {
			for j := range sides {
				if sides[j].null(i) {
					if nulls == nil {
						nulls = vector.NewBitmap(n)
					}
					nulls.Set(i)
					continue floatRows
				}
			}
			best := sides[0].float(i)
			for j := 1; j < len(sides); j++ {
				// NaN never beats best, and a NaN best is never beaten —
				// Value.Compare orders NaN equal to everything.
				if v := sides[j].float(i); wantLess && v < best || !wantLess && v > best {
					best = v
				}
			}
			out[i] = best
		}
		return vector.NewFloat64Vector(out, nulls)
	}

	// Generic: boxed element-wise, preserving the winner's kind (mixed
	// int/float operands must return the winning operand itself).
	out := make([]types.Value, n)
	for i := 0; i < n; i++ {
		var best types.Value
		null := false
		for j := range args {
			var v types.Value
			if args[j].isConst {
				v = args[j].c
			} else {
				v = vecs[j].Value(i)
			}
			if v.IsNull() {
				null = true
				break
			}
			if j == 0 {
				best = v
				continue
			}
			if c := v.Compare(best); wantLess && c < 0 || !wantLess && c > 0 {
				best = v
			}
		}
		if !null {
			out[i] = best
		}
	}
	return vector.NewValueVector(out)
}

// resolveAll binds every operand as an integer side, reporting whether all
// of them are integer-typed.
func resolveAll(args []vecOperand, vecs []vector.Vector, intOnly bool) ([]arithSide, bool) {
	sides := make([]arithSide, len(args))
	for i, a := range args {
		s, ok := resolveNumericSide(a, vecs[i], intOnly)
		if !ok {
			return nil, false
		}
		sides[i] = s
	}
	return sides, true
}

// resolveAllFloat binds every operand as a float side, reporting whether all
// of them are float64-typed (mixed int/float falls to the generic loop,
// which must preserve the winner's kind).
func resolveAllFloat(args []vecOperand, vecs []vector.Vector) ([]arithSide, bool) {
	sides := make([]arithSide, len(args))
	for i, a := range args {
		if a.isConst {
			if a.c.Kind() != types.KindFloat {
				return nil, false
			}
			sides[i] = arithSide{cF: a.c.Float()}
			continue
		}
		tv, ok := vecs[i].(*vector.Float64Vector)
		if !ok {
			return nil, false
		}
		s := arithSide{f64: tv.Vals}
		if tv.AnyNull() {
			s.nullAt = tv.Null
		}
		sides[i] = s
	}
	return sides, true
}
