package algebra

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Node is a logical plan operator. Every node knows its output schema.
type Node interface {
	Schema() types.Schema
	fmt.Stringer
}

// Scan reads a base table from the catalog.
type Scan struct {
	Table     string
	TblSchema types.Schema // filled by the planner from the catalog
}

// Schema implements Node.
func (n *Scan) Schema() types.Schema { return n.TblSchema }

// String renders the scan.
func (n *Scan) String() string { return "Scan(" + n.Table + ")" }

// Filter keeps rows whose predicate evaluates to TRUE.
type Filter struct {
	Input Node
	Pred  Expr
}

// Schema implements Node.
func (n *Filter) Schema() types.Schema { return n.Input.Schema() }

// String renders the filter.
func (n *Filter) String() string { return fmt.Sprintf("Filter[%s](%s)", n.Pred, n.Input) }

// Project computes one output column per expression.
type Project struct {
	Input Node
	Exprs []Expr
	Names []string
}

// Schema implements Node.
func (n *Project) Schema() types.Schema {
	return types.Schema{Attrs: n.Names}
}

// String renders the projection.
func (n *Project) String() string {
	parts := make([]string, len(n.Exprs))
	for i, e := range n.Exprs {
		parts[i] = fmt.Sprintf("%s AS %s", e, n.Names[i])
	}
	return fmt.Sprintf("Project[%s](%s)", strings.Join(parts, ", "), n.Input)
}

// Join combines two inputs. When EquiL/EquiR are non-empty the executor uses
// a hash join on those column positions (left positions index the left
// schema, right positions the right schema) and evaluates Residual on each
// candidate pair; otherwise it falls back to a nested-loop join evaluating
// Residual on the concatenated row. A nil Residual accepts all pairs.
type Join struct {
	Left, Right  Node
	EquiL, EquiR []int
	Residual     Expr
}

// Schema implements Node.
func (n *Join) Schema() types.Schema {
	return n.Left.Schema().Concat(n.Right.Schema())
}

// String renders the join.
func (n *Join) String() string {
	cond := "true"
	if n.Residual != nil {
		cond = n.Residual.String()
	}
	if len(n.EquiL) > 0 {
		cond = fmt.Sprintf("equi%v=%v, %s", n.EquiL, n.EquiR, cond)
	}
	return fmt.Sprintf("Join[%s](%s, %s)", cond, n.Left, n.Right)
}

// UnionAll appends the rows of both inputs (bag union).
type UnionAll struct {
	Left, Right Node
}

// Schema implements Node.
func (n *UnionAll) Schema() types.Schema { return n.Left.Schema() }

// String renders the union.
func (n *UnionAll) String() string { return fmt.Sprintf("UnionAll(%s, %s)", n.Left, n.Right) }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// The aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[AggFunc]string{
	AggCount: "count", AggSum: "sum", AggAvg: "avg", AggMin: "min", AggMax: "max",
}

// AggName maps SQL function names to AggFunc.
func AggName(name string) (AggFunc, bool) {
	switch strings.ToLower(name) {
	case "count":
		return AggCount, true
	case "sum":
		return AggSum, true
	case "avg":
		return AggAvg, true
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	default:
		return 0, false
	}
}

// AggSpec is one aggregate computation. Star marks COUNT(*).
type AggSpec struct {
	Func AggFunc
	Arg  Expr // nil for COUNT(*)
	Star bool
	Name string
}

// String renders the aggregate.
func (a AggSpec) String() string {
	if a.Star {
		return aggNames[a.Func] + "(*)"
	}
	return fmt.Sprintf("%s(%s)", aggNames[a.Func], a.Arg)
}

// Aggregate groups by the key expressions and computes the aggregates. The
// output schema is the group-by columns followed by the aggregate columns.
type Aggregate struct {
	Input      Node
	GroupBy    []Expr
	GroupNames []string
	Aggs       []AggSpec
}

// Schema implements Node.
func (n *Aggregate) Schema() types.Schema {
	attrs := append([]string{}, n.GroupNames...)
	for _, a := range n.Aggs {
		attrs = append(attrs, a.Name)
	}
	return types.Schema{Attrs: attrs}
}

// String renders the aggregation.
func (n *Aggregate) String() string {
	keys := make([]string, len(n.GroupBy))
	for i, e := range n.GroupBy {
		keys[i] = e.String()
	}
	aggs := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		aggs[i] = a.String()
	}
	return fmt.Sprintf("Aggregate[by %s; %s](%s)",
		strings.Join(keys, ","), strings.Join(aggs, ","), n.Input)
}

// SortKey is one ordering key over the input schema.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort orders rows by the keys.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// Schema implements Node.
func (n *Sort) Schema() types.Schema { return n.Input.Schema() }

// String renders the sort.
func (n *Sort) String() string { return fmt.Sprintf("Sort(%s)", n.Input) }

// Limit keeps the first N rows.
type Limit struct {
	Input Node
	N     int64
}

// Schema implements Node.
func (n *Limit) Schema() types.Schema { return n.Input.Schema() }

// String renders the limit.
func (n *Limit) String() string { return fmt.Sprintf("Limit[%d](%s)", n.N, n.Input) }

// Distinct removes duplicate rows (set projection).
type Distinct struct {
	Input Node
}

// Schema implements Node.
func (n *Distinct) Schema() types.Schema { return n.Input.Schema() }

// String renders the distinct.
func (n *Distinct) String() string { return fmt.Sprintf("Distinct(%s)", n.Input) }
