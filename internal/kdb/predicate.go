package kdb

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Predicate is a boolean condition over a tuple, resolved against a schema
// at evaluation time. Predicates are deliberately simple — comparisons and
// boolean connectives — because RA⁺ only needs θ(t) ∈ {0_K, 1_K}; the SQL
// engine in internal/engine has its own richer expression language.
type Predicate interface {
	Eval(schema types.Schema, t types.Tuple) bool
	fmt.Stringer
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// The comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator symbol.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Apply evaluates the comparison on the total value order.
func (op CmpOp) Apply(a, b types.Value) bool {
	c := a.Compare(b)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// AttrConst compares an attribute to a constant.
type AttrConst struct {
	Attr  string
	Op    CmpOp
	Const types.Value
}

// Eval implements Predicate.
func (p AttrConst) Eval(schema types.Schema, t types.Tuple) bool {
	return p.Op.Apply(t[schema.MustIndexOf(p.Attr)], p.Const)
}

// String renders the comparison.
func (p AttrConst) String() string {
	return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Const)
}

// AttrAttr compares two attributes, optionally at explicit positions (Pos*
// ≥ 0 take precedence over names, needed when a self-join duplicates names).
type AttrAttr struct {
	Left, Right       string
	PosLeft, PosRight int // -1 to resolve by name
	Op                CmpOp
}

// Eval implements Predicate.
func (p AttrAttr) Eval(schema types.Schema, t types.Tuple) bool {
	li, ri := p.PosLeft, p.PosRight
	if li < 0 {
		li = schema.MustIndexOf(p.Left)
	}
	if ri < 0 {
		ri = schema.MustIndexOf(p.Right)
	}
	return p.Op.Apply(t[li], t[ri])
}

// String renders the comparison.
func (p AttrAttr) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// And is a conjunction of predicates.
type And []Predicate

// Eval implements Predicate.
func (p And) Eval(schema types.Schema, t types.Tuple) bool {
	for _, c := range p {
		if !c.Eval(schema, t) {
			return false
		}
	}
	return true
}

// String renders the conjunction.
func (p And) String() string {
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

// Or is a disjunction of predicates.
type Or []Predicate

// Eval implements Predicate.
func (p Or) Eval(schema types.Schema, t types.Tuple) bool {
	for _, c := range p {
		if c.Eval(schema, t) {
			return true
		}
	}
	return false
}

// String renders the disjunction.
func (p Or) String() string {
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// TruePred accepts every tuple.
type TruePred struct{}

// Eval implements Predicate.
func (TruePred) Eval(types.Schema, types.Tuple) bool { return true }

// String renders "true".
func (TruePred) String() string { return "true" }
