package kdb

import (
	"math/rand"
	"testing"

	"repro/internal/semiring"
	"repro/internal/types"
)

func nrel(name string, attrs ...string) *Relation[int64] {
	return New[int64](semiring.Nat, types.NewSchema(name, attrs...))
}

func it(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.NewInt(v)
	}
	return t
}

func TestRelationBasics(t *testing.T) {
	r := nrel("R", "a", "b")
	r.Add(it(1, 2), 1)
	r.Add(it(1, 2), 2) // ⊕ accumulates
	r.Add(it(3, 4), 1)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Get(it(1, 2)) != 3 {
		t.Errorf("Get = %d, want 3", r.Get(it(1, 2)))
	}
	if r.Get(it(9, 9)) != 0 {
		t.Error("absent tuple should be 0")
	}
	r.Set(it(3, 4), 0) // setting zero removes
	if r.Len() != 1 {
		t.Error("Set(0) should remove")
	}
	r.Add(it(5, 6), 0) // adding zero is a no-op
	if r.Len() != 1 {
		t.Error("Add(0) should not insert")
	}
}

func TestRelationCloneEqual(t *testing.T) {
	r := nrel("R", "a")
	r.Add(it(1), 2)
	c := r.Clone()
	if !r.Equal(c) {
		t.Error("clone not equal")
	}
	c.Add(it(1), 1)
	if r.Equal(c) {
		t.Error("mutating clone affected original comparison")
	}
	if r.Get(it(1)) != 2 {
		t.Error("clone shares storage")
	}
}

func TestTuplesDeterministic(t *testing.T) {
	r := nrel("R", "a")
	for _, v := range []int64{5, 1, 3, 2, 4} {
		r.Add(it(v), 1)
	}
	ts := r.Tuples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) >= 0 {
			t.Fatal("Tuples not sorted")
		}
	}
}

func TestSelectSemantics(t *testing.T) {
	r := nrel("R", "a", "b")
	r.Add(it(1, 10), 2)
	r.Add(it(2, 20), 3)
	got := Select(r, func(tp types.Tuple) bool { return tp[0].Int() == 1 })
	if got.Len() != 1 || got.Get(it(1, 10)) != 2 {
		t.Errorf("Select result: %v", got)
	}
}

func TestProjectSumsAnnotations(t *testing.T) {
	// The paper's Example 5: projection sums multiplicities.
	r := nrel("R", "a", "b")
	r.Add(it(1, 10), 2)
	r.Add(it(1, 20), 3)
	r.Add(it(2, 30), 1)
	got := Project(r, []int{0})
	if got.Get(it(1)) != 5 {
		t.Errorf("π sums: got %d, want 5", got.Get(it(1)))
	}
	if got.Get(it(2)) != 1 {
		t.Error("π preserves singleton")
	}
	if got.Schema().Arity() != 1 {
		t.Error("π schema")
	}
}

func TestJoinMultipliesAnnotations(t *testing.T) {
	r1 := nrel("R", "a")
	r1.Add(it(1), 2)
	r2 := nrel("S", "b")
	r2.Add(it(1), 3)
	r2.Add(it(2), 5)
	eq := func(tp types.Tuple) bool { return tp[0].Equal(tp[1]) }
	got := Join(r1, r2, eq)
	if got.Len() != 1 || got.Get(it(1, 1)) != 6 {
		t.Errorf("⋈ multiplies: %v", got)
	}
	cross := Join(r1, r2, nil)
	if cross.Len() != 2 || cross.Get(it(1, 2)) != 10 {
		t.Errorf("cross: %v", cross)
	}
}

func TestUnionAddsAnnotations(t *testing.T) {
	r1 := nrel("R", "a")
	r1.Add(it(1), 2)
	r2 := nrel("R", "a")
	r2.Add(it(1), 3)
	r2.Add(it(2), 1)
	got := Union(r1, r2)
	if got.Get(it(1)) != 5 || got.Get(it(2)) != 1 {
		t.Errorf("∪: %v", got)
	}
	// Different attribute names but equal arity is union-compatible (SQL
	// semantics); the result takes the left schema.
	renamed := nrel("S", "x")
	renamed.Add(it(7), 1)
	u := Union(r1, renamed)
	if u.Schema().Attrs[0] != "a" || u.Get(it(7)) != 1 {
		t.Error("union should take left schema")
	}
	bad := nrel("S", "a", "b")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("union of incompatible schemas should panic")
			}
		}()
		Union(r1, bad)
	}()
}

func TestPaperExample5(t *testing.T) {
	// Figure 7: Qa = π_state(Address ⋈ Neighborhood) over N.
	addr := nrel("Address", "id", "l")
	addr.Add(types.Tuple{types.NewInt(1), types.NewString("L1")}, 1)
	addr.Add(types.Tuple{types.NewInt(2), types.NewString("L2")}, 1)
	addr.Add(types.Tuple{types.NewInt(3), types.NewString("L4")}, 1)
	nb := nrel("Neighborhood", "l2", "locale", "state")
	for _, row := range []struct {
		l, loc, st string
	}{
		{"L1", "Lasalle", "NY"}, {"L2", "Tucson", "AZ"}, {"L3", "GrantFerry", "NY"},
		{"L4", "Kingsley", "NY"}, {"L5", "Woodlawn", "IL"},
	} {
		nb.Add(types.Tuple{types.NewString(row.l), types.NewString(row.loc), types.NewString(row.st)}, 1)
	}
	join := Join(addr, nb, func(tp types.Tuple) bool { return tp[1].Equal(tp[2]) })
	res := Project(join, []int{4})
	if got := res.Get(types.Tuple{types.NewString("NY")}); got != 2 {
		t.Errorf("NY count = %d, want 2", got)
	}
	if got := res.Get(types.Tuple{types.NewString("AZ")}); got != 1 {
		t.Errorf("AZ count = %d, want 1", got)
	}
	if got := res.Get(types.Tuple{types.NewString("IL")}); got != 0 {
		t.Errorf("IL count = %d, want 0", got)
	}
}

func TestRename(t *testing.T) {
	r := nrel("R", "a")
	r.Add(it(1), 1)
	s := Rename(r, types.NewSchema("S", "x"))
	if s.Schema().Name != "S" || s.Schema().Attrs[0] != "x" || s.Get(it(1)) != 1 {
		t.Error("rename")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rename arity mismatch should panic")
			}
		}()
		Rename(r, types.NewSchema("S", "x", "y"))
	}()
}

func TestMapAnnotationsHom(t *testing.T) {
	r := nrel("R", "a")
	r.Add(it(1), 3)
	r.Add(it(2), 1)
	b := MapAnnotations(r, semiring.Bool, func(k int64) bool { return k > 0 })
	if !b.Get(it(1)) || !b.Get(it(2)) || b.Len() != 2 {
		t.Error("support hom")
	}
}

// randomDB builds a small random N-database with two relations R(a,b), S(b,c).
func randomDB(rng *rand.Rand) *Database[int64] {
	db := NewDatabase[int64](semiring.Nat)
	r := nrel("R", "a", "b")
	s := nrel("S", "c", "d")
	for i := 0; i < 6; i++ {
		r.Add(it(rng.Int63n(4), rng.Int63n(4)), rng.Int63n(3))
		s.Add(it(rng.Int63n(4), rng.Int63n(4)), rng.Int63n(3))
	}
	db.Put(r)
	db.Put(s)
	return db
}

// randomQuery builds a random RA⁺ query over R(a,b), S(c,d).
func randomQuery(rng *rand.Rand, depth int) Query {
	if depth <= 0 {
		if rng.Intn(2) == 0 {
			return Table{Name: "R"}
		}
		return Table{Name: "S"}
	}
	switch rng.Intn(4) {
	case 0:
		in := randomQuery(rng, depth-1)
		attr := firstAttr(in)
		return SelectQ{Input: in, Pred: AttrConst{Attr: attr, Op: OpLe, Const: types.NewInt(rng.Int63n(4))}}
	case 1:
		in := randomQuery(rng, depth-1)
		return ProjectQ{Input: in, Attrs: []string{firstAttr(in)}}
	case 2:
		l := randomQuery(rng, depth-1)
		r := randomQuery(rng, depth-1)
		return JoinQ{Left: l, Right: r, Pred: AttrAttr{PosLeft: 0, PosRight: arity(l), Op: OpEq}}
	default:
		l := randomQuery(rng, depth-1)
		// Union requires compatible schemas; project both to one column.
		r := randomQuery(rng, depth-1)
		return UnionQ{
			Left:  ProjectQ{Input: l, Attrs: []string{firstAttr(l)}},
			Right: ProjectQ{Input: r, Attrs: []string{firstAttr(r)}},
		}
	}
}

var testSchemas = map[string]types.Schema{
	"r": types.NewSchema("R", "a", "b"),
	"s": types.NewSchema("S", "c", "d"),
}

func firstAttr(q Query) string {
	s, err := OutputSchema(q, testSchemas)
	if err != nil {
		panic(err)
	}
	return s.Attrs[0]
}

func arity(q Query) int {
	s, err := OutputSchema(q, testSchemas)
	if err != nil {
		panic(err)
	}
	return s.Arity()
}

func TestUnionSchemaOfRandomQueriesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		q := randomQuery(rng, 3)
		db := randomDB(rng)
		if _, err := Eval(q, db); err != nil {
			t.Fatalf("query %s failed: %v", q, err)
		}
	}
}

func TestHomomorphismsCommuteWithQueries(t *testing.T) {
	// Green et al.: for a semiring homomorphism h, h(Q(D)) = Q(h(D)).
	// Use the support homomorphism N → B over random databases and queries.
	rng := rand.New(rand.NewSource(42))
	h := func(k int64) bool { return k > 0 }
	for trial := 0; trial < 60; trial++ {
		db := randomDB(rng)
		q := randomQuery(rng, rng.Intn(3)+1)
		resN, err := Eval(q, db)
		if err != nil {
			t.Fatal(err)
		}
		hThenQ := MapAnnotations(resN, semiring.Bool, h)

		dbB := MapDatabase(db, semiring.Bool, h)
		qThenH, err := Eval(q, dbB)
		if err != nil {
			t.Fatal(err)
		}
		if !hThenQ.Equal(qThenH) {
			t.Fatalf("h(Q(D)) != Q(h(D)) for %s:\nh(Q(D)) = %s\nQ(h(D)) = %s", q, hThenQ, qThenH)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	db := NewDatabase[int64](semiring.Nat)
	if _, err := Eval(Table{Name: "missing"}, db); err == nil {
		t.Error("expected unknown-table error")
	}
	r := nrel("R", "a")
	db.Put(r)
	if _, err := Eval(ProjectQ{Input: Table{Name: "R"}, Attrs: []string{"zzz"}}, db); err == nil {
		t.Error("expected unknown-attribute error")
	}
}

func TestOutputSchema(t *testing.T) {
	q := ProjectQ{
		Input: JoinQ{Left: Table{Name: "R"}, Right: Table{Name: "S"}},
		Attrs: []string{"a", "d"},
	}
	s, err := OutputSchema(q, testSchemas)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.Attrs[0] != "a" || s.Attrs[1] != "d" {
		t.Errorf("schema = %s", s)
	}
	if _, err := OutputSchema(Table{Name: "zzz"}, testSchemas); err == nil {
		t.Error("expected error")
	}
}

func TestPredicates(t *testing.T) {
	schema := types.NewSchema("R", "a", "b")
	tp := it(3, 5)
	cases := []struct {
		p    Predicate
		want bool
	}{
		{AttrConst{Attr: "a", Op: OpEq, Const: types.NewInt(3)}, true},
		{AttrConst{Attr: "a", Op: OpNe, Const: types.NewInt(3)}, false},
		{AttrConst{Attr: "b", Op: OpGt, Const: types.NewInt(4)}, true},
		{AttrConst{Attr: "b", Op: OpGe, Const: types.NewInt(6)}, false},
		{AttrConst{Attr: "b", Op: OpLt, Const: types.NewInt(6)}, true},
		{AttrConst{Attr: "b", Op: OpLe, Const: types.NewInt(5)}, true},
		{AttrAttr{Left: "a", Right: "b", PosLeft: -1, PosRight: -1, Op: OpLt}, true},
		{AttrAttr{PosLeft: 0, PosRight: 1, Op: OpEq}, false},
		{And{AttrConst{Attr: "a", Op: OpEq, Const: types.NewInt(3)}, TruePred{}}, true},
		{And{AttrConst{Attr: "a", Op: OpEq, Const: types.NewInt(9)}, TruePred{}}, false},
		{Or{AttrConst{Attr: "a", Op: OpEq, Const: types.NewInt(9)}, TruePred{}}, true},
		{Or{}, false},
		{And{}, true},
		{TruePred{}, true},
	}
	for i, c := range cases {
		if got := c.p.Eval(schema, tp); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, c.p, got, c.want)
		}
	}
}

func TestQueryString(t *testing.T) {
	q := ProjectQ{
		Input: SelectQ{
			Input: JoinQ{Left: Table{Name: "R"}, Right: Table{Name: "S"},
				Pred: AttrAttr{Left: "b", Right: "c", PosLeft: -1, PosRight: -1, Op: OpEq}},
			Pred: AttrConst{Attr: "a", Op: OpGt, Const: types.NewInt(1)},
		},
		Attrs: []string{"a"},
	}
	want := "π[a](σ[a > 1]((R ⋈[b = c] S)))"
	if q.String() != want {
		t.Errorf("String = %q, want %q", q.String(), want)
	}
}
