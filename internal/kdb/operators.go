package kdb

import (
	"fmt"

	"repro/internal/types"
)

// Select returns σ_pred(r): each tuple keeps its annotation multiplied by
// θ(t) ∈ {0_K, 1_K} (Section 2.3), which for a boolean predicate simply
// drops non-matching tuples.
func Select[T any](r *Relation[T], pred func(types.Tuple) bool) *Relation[T] {
	out := New(r.k, r.schema)
	r.ForEach(func(t types.Tuple, ann T) {
		if pred(t) {
			out.Add(t, ann)
		}
	})
	return out
}

// Project returns π_idx(r): annotations of tuples that collapse onto the
// same projected tuple are summed with ⊕.
func Project[T any](r *Relation[T], idx []int) *Relation[T] {
	out := New(r.k, r.schema.Project(idx))
	r.ForEach(func(t types.Tuple, ann T) {
		out.Add(t.Project(idx), ann)
	})
	return out
}

// ProjectAttrs is Project with attribute names resolved against r's schema.
func ProjectAttrs[T any](r *Relation[T], attrs []string) *Relation[T] {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = r.schema.MustIndexOf(a)
	}
	return Project(r, idx)
}

// Join returns r1 ⋈_θ r2: the cross product with annotations multiplied by
// ⊗, keeping combined tuples that satisfy θ (θ evaluated on the concatenated
// tuple). A nil θ yields the full cross product.
func Join[T any](r1, r2 *Relation[T], theta func(types.Tuple) bool) *Relation[T] {
	out := New(r1.k, r1.schema.Concat(r2.schema))
	r1.ForEach(func(t1 types.Tuple, a1 T) {
		r2.ForEach(func(t2 types.Tuple, a2 T) {
			t := t1.Concat(t2)
			if theta == nil || theta(t) {
				out.Add(t, r1.k.Mul(a1, a2))
			}
		})
	})
	return out
}

// EquiJoin is a hash join: tuples pair up when their key columns (positions
// into each input) are equal, and theta (over the concatenated tuple, nil =
// accept) filters residually. It computes the same relation as Join with an
// equality predicate but in O(|r1| + |r2| + output).
func EquiJoin[T any](r1, r2 *Relation[T], leftKey, rightKey []int, theta func(types.Tuple) bool) *Relation[T] {
	out := New(r1.k, r1.schema.Concat(r2.schema))
	build := make(map[string][]entry[T], r2.Len())
	r2.ForEach(func(t2 types.Tuple, a2 T) {
		k := t2.Project(rightKey).Key()
		build[k] = append(build[k], entry[T]{tup: t2, ann: a2})
	})
	r1.ForEach(func(t1 types.Tuple, a1 T) {
		k := t1.Project(leftKey).Key()
		for _, e := range build[k] {
			t := t1.Concat(e.tup)
			if theta == nil || theta(t) {
				out.Add(t, r1.k.Mul(a1, e.ann))
			}
		}
	})
	return out
}

// Union returns r1 ∪ r2 with annotations combined by ⊕. The inputs must be
// union-compatible (same arity, as in SQL); the result takes r1's schema.
func Union[T any](r1, r2 *Relation[T]) *Relation[T] {
	if r1.schema.Arity() != r2.schema.Arity() {
		panic(fmt.Sprintf("kdb: union of incompatible schemas %s and %s", r1.schema, r2.schema))
	}
	out := New(r1.k, r1.schema)
	r1.ForEach(func(t types.Tuple, a T) { out.Add(t, a) })
	r2.ForEach(func(t types.Tuple, a T) { out.Add(t, a) })
	return out
}

// Rename returns r with a new relation name and attribute names.
func Rename[T any](r *Relation[T], schema types.Schema) *Relation[T] {
	if schema.Arity() != r.schema.Arity() {
		panic(fmt.Sprintf("kdb: rename arity mismatch: %s vs %s", schema, r.schema))
	}
	out := New(r.k, schema)
	r.ForEach(func(t types.Tuple, a T) { out.Add(t, a) })
	return out
}
