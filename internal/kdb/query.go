package kdb

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Query is an RA⁺ query tree over K-relations. Because evaluation only uses
// the semiring operations, the same query evaluates over any annotation
// domain — in particular over K^W (possible-worlds semantics), over a
// labeling in K, and over a UA-DB in K², which is how the paper's bound
// preservation theorems are exercised in tests.
type Query interface {
	// Eval evaluates the query over db.
	// The result schema depends on the inputs.
	evalNode() // marker; evaluation is via Eval to keep generics at the call site
	fmt.Stringer
}

// Table scans a named base relation.
type Table struct{ Name string }

// SelectQ filters by a predicate.
type SelectQ struct {
	Input Query
	Pred  Predicate
}

// ProjectQ projects onto named attributes.
type ProjectQ struct {
	Input Query
	Attrs []string
}

// JoinQ is a θ-join (cross product when Pred is nil).
type JoinQ struct {
	Left, Right Query
	Pred        Predicate
}

// UnionQ is a union of two union-compatible inputs.
type UnionQ struct{ Left, Right Query }

// RenameQ renames the output attributes of its input (arity must match).
type RenameQ struct {
	Input Query
	Attrs []string
}

func (Table) evalNode()    {}
func (SelectQ) evalNode()  {}
func (ProjectQ) evalNode() {}
func (JoinQ) evalNode()    {}
func (UnionQ) evalNode()   {}
func (RenameQ) evalNode()  {}

func (q Table) String() string { return q.Name }
func (q SelectQ) String() string {
	return fmt.Sprintf("σ[%s](%s)", q.Pred, q.Input)
}
func (q ProjectQ) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(q.Attrs, ","), q.Input)
}
func (q JoinQ) String() string {
	if q.Pred == nil {
		return fmt.Sprintf("(%s × %s)", q.Left, q.Right)
	}
	return fmt.Sprintf("(%s ⋈[%s] %s)", q.Left, q.Pred, q.Right)
}
func (q UnionQ) String() string { return fmt.Sprintf("(%s ∪ %s)", q.Left, q.Right) }
func (q RenameQ) String() string {
	return fmt.Sprintf("ρ[%s](%s)", strings.Join(q.Attrs, ","), q.Input)
}

// Eval evaluates an RA⁺ query over a K-database. It returns an error for
// unknown tables or attributes so callers (e.g. random query generators) can
// reject ill-formed queries instead of panicking.
func Eval[T any](q Query, db *Database[T]) (rel *Relation[T], err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("kdb: eval %s: %v", q, p)
		}
	}()
	return eval(q, db)
}

func eval[T any](q Query, db *Database[T]) (*Relation[T], error) {
	switch n := q.(type) {
	case Table:
		r := db.Get(n.Name)
		if r == nil {
			return nil, fmt.Errorf("kdb: unknown table %q", n.Name)
		}
		return r, nil
	case SelectQ:
		in, err := eval(n.Input, db)
		if err != nil {
			return nil, err
		}
		schema := in.Schema()
		return Select(in, func(t types.Tuple) bool { return n.Pred.Eval(schema, t) }), nil
	case ProjectQ:
		in, err := eval(n.Input, db)
		if err != nil {
			return nil, err
		}
		return ProjectAttrs(in, n.Attrs), nil
	case JoinQ:
		l, err := eval(n.Left, db)
		if err != nil {
			return nil, err
		}
		r, err := eval(n.Right, db)
		if err != nil {
			return nil, err
		}
		if n.Pred == nil {
			return Join(l, r, nil), nil
		}
		schema := l.Schema().Concat(r.Schema())
		// Hash-join fast path: peel attribute-equality conjuncts that span
		// the two sides off the predicate.
		leftKey, rightKey, residual := extractEqui(n.Pred, l.Schema(), r.Schema())
		if len(leftKey) > 0 {
			var theta func(types.Tuple) bool
			if residual != nil {
				theta = func(t types.Tuple) bool { return residual.Eval(schema, t) }
			}
			return EquiJoin(l, r, leftKey, rightKey, theta), nil
		}
		return Join(l, r, func(t types.Tuple) bool { return n.Pred.Eval(schema, t) }), nil
	case UnionQ:
		l, err := eval(n.Left, db)
		if err != nil {
			return nil, err
		}
		r, err := eval(n.Right, db)
		if err != nil {
			return nil, err
		}
		return Union(l, r), nil
	case RenameQ:
		in, err := eval(n.Input, db)
		if err != nil {
			return nil, err
		}
		if len(n.Attrs) != in.Schema().Arity() {
			return nil, fmt.Errorf("kdb: rename arity mismatch")
		}
		return Rename(in, types.Schema{Name: in.Schema().Name, Attrs: n.Attrs}), nil
	default:
		return nil, fmt.Errorf("kdb: unknown query node %T", q)
	}
}

// extractEqui splits a join predicate into hash keys and a residual. It
// recognizes AttrAttr equality conjuncts whose operands resolve on opposite
// sides (by explicit position or unique name); everything else stays in the
// residual predicate (nil when empty).
func extractEqui(p Predicate, left, right types.Schema) (leftKey, rightKey []int, residual Predicate) {
	var rest And
	var peel func(Predicate) bool
	lw := left.Arity()
	// resolve mirrors AttrAttr.Eval: names resolve against the concatenated
	// schema, left side first.
	resolve := func(pos int, name string) int {
		if pos >= 0 {
			return pos
		}
		if i := left.IndexOf(name); i >= 0 {
			return i
		}
		if i := right.IndexOf(name); i >= 0 {
			return lw + i
		}
		return -1
	}
	tryPair := func(a AttrAttr) bool {
		li := resolve(a.PosLeft, a.Left)
		ri := resolve(a.PosRight, a.Right)
		if li < 0 || ri < 0 {
			return false
		}
		// Orient so one index is on each side.
		if li >= lw && ri < lw {
			li, ri = ri, li
		}
		if li < lw && ri >= lw {
			leftKey = append(leftKey, li)
			rightKey = append(rightKey, ri-lw)
			return true
		}
		return false
	}
	peel = func(q Predicate) bool {
		switch n := q.(type) {
		case And:
			for _, c := range n {
				if !peel(c) {
					rest = append(rest, c)
				}
			}
			return true
		case AttrAttr:
			if n.Op == OpEq && tryPair(n) {
				return true
			}
			return false
		default:
			return false
		}
	}
	if !peel(p) {
		return nil, nil, p
	}
	if len(rest) > 0 {
		residual = rest
	}
	return leftKey, rightKey, residual
}

// OutputSchema computes the schema a query produces against the schemas of
// the base tables, without evaluating it.
func OutputSchema(q Query, schemas map[string]types.Schema) (types.Schema, error) {
	switch n := q.(type) {
	case Table:
		s, ok := schemas[strings.ToLower(n.Name)]
		if !ok {
			return types.Schema{}, fmt.Errorf("kdb: unknown table %q", n.Name)
		}
		return s, nil
	case SelectQ:
		return OutputSchema(n.Input, schemas)
	case ProjectQ:
		in, err := OutputSchema(n.Input, schemas)
		if err != nil {
			return types.Schema{}, err
		}
		idx := make([]int, len(n.Attrs))
		for i, a := range n.Attrs {
			j := in.IndexOf(a)
			if j < 0 {
				return types.Schema{}, fmt.Errorf("kdb: unknown attribute %q", a)
			}
			idx[i] = j
		}
		return in.Project(idx), nil
	case JoinQ:
		l, err := OutputSchema(n.Left, schemas)
		if err != nil {
			return types.Schema{}, err
		}
		r, err := OutputSchema(n.Right, schemas)
		if err != nil {
			return types.Schema{}, err
		}
		return l.Concat(r), nil
	case UnionQ:
		return OutputSchema(n.Left, schemas)
	case RenameQ:
		in, err := OutputSchema(n.Input, schemas)
		if err != nil {
			return types.Schema{}, err
		}
		if len(n.Attrs) != in.Arity() {
			return types.Schema{}, fmt.Errorf("kdb: rename arity mismatch")
		}
		return types.Schema{Name: in.Name, Attrs: n.Attrs}, nil
	default:
		return types.Schema{}, fmt.Errorf("kdb: unknown query node %T", q)
	}
}
