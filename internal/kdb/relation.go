// Package kdb implements K-relations (Green et al., PODS 2007): relations
// whose tuples are annotated with elements of a commutative semiring, plus
// the positive relational algebra (RA⁺) over them and lifting of semiring
// homomorphisms to relations and databases. Everything in this package is
// generic over the annotation type, so the same operator code evaluates set
// relations (B), bag relations (N), possible-world relations (K^W), and
// UA-relations (K²).
package kdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/semiring"
	"repro/internal/types"
)

// Relation is a finite map from tuples to annotations. Tuples annotated with
// 0_K are absent: mutators normalize them away, so Len and iteration only see
// present tuples.
type Relation[T any] struct {
	schema types.Schema
	k      semiring.Semiring[T]
	rows   map[string]entry[T]
}

type entry[T any] struct {
	tup types.Tuple
	ann T
}

// New returns an empty K-relation with the given semiring and schema.
func New[T any](k semiring.Semiring[T], schema types.Schema) *Relation[T] {
	return &Relation[T]{schema: schema, k: k, rows: make(map[string]entry[T])}
}

// Schema returns the relation schema.
func (r *Relation[T]) Schema() types.Schema { return r.schema }

// Semiring returns the annotation semiring.
func (r *Relation[T]) Semiring() semiring.Semiring[T] { return r.k }

// Len returns the number of tuples with non-zero annotation.
func (r *Relation[T]) Len() int { return len(r.rows) }

// Get returns the annotation of t (0_K when absent).
func (r *Relation[T]) Get(t types.Tuple) T {
	if e, ok := r.rows[t.Key()]; ok {
		return e.ann
	}
	return r.k.Zero()
}

// Set assigns annotation ann to tuple t, replacing any previous annotation.
// Setting 0_K removes the tuple.
func (r *Relation[T]) Set(t types.Tuple, ann T) {
	key := t.Key()
	if r.k.IsZero(ann) {
		delete(r.rows, key)
		return
	}
	r.rows[key] = entry[T]{tup: t.Clone(), ann: ann}
}

// Add combines ann into t's current annotation with ⊕ (bag-insert semantics).
func (r *Relation[T]) Add(t types.Tuple, ann T) {
	key := t.Key()
	if e, ok := r.rows[key]; ok {
		sum := r.k.Add(e.ann, ann)
		if r.k.IsZero(sum) {
			delete(r.rows, key)
			return
		}
		e.ann = sum
		r.rows[key] = e
		return
	}
	if r.k.IsZero(ann) {
		return
	}
	r.rows[key] = entry[T]{tup: t.Clone(), ann: ann}
}

// ForEach visits every present tuple in an unspecified order.
func (r *Relation[T]) ForEach(f func(t types.Tuple, ann T)) {
	for _, e := range r.rows {
		f(e.tup, e.ann)
	}
}

// Tuples returns the present tuples in a deterministic (sorted) order.
func (r *Relation[T]) Tuples() []types.Tuple {
	out := make([]types.Tuple, 0, len(r.rows))
	for _, e := range r.rows {
		out = append(out, e.tup)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns a deep copy of the relation.
func (r *Relation[T]) Clone() *Relation[T] {
	c := New(r.k, r.schema)
	for k, e := range r.rows {
		c.rows[k] = entry[T]{tup: e.tup.Clone(), ann: e.ann}
	}
	return c
}

// Equal reports whether r and o contain the same tuples with equal
// annotations (schemas must be union-compatible).
func (r *Relation[T]) Equal(o *Relation[T]) bool {
	if !r.schema.Equal(o.schema) || len(r.rows) != len(o.rows) {
		return false
	}
	for k, e := range r.rows {
		oe, ok := o.rows[k]
		if !ok || !r.k.Eq(e.ann, oe.ann) {
			return false
		}
	}
	return true
}

// String renders the relation as a small table, tuples sorted.
func (r *Relation[T]) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%d tuples]\n", r.schema, len(r.rows))
	for _, t := range r.Tuples() {
		fmt.Fprintf(&sb, "  %s -> %s\n", t, r.k.Format(r.Get(t)))
	}
	return sb.String()
}

// Database is a named collection of K-relations over one semiring.
type Database[T any] struct {
	K         semiring.Semiring[T]
	Relations map[string]*Relation[T]
}

// NewDatabase returns an empty database over k.
func NewDatabase[T any](k semiring.Semiring[T]) *Database[T] {
	return &Database[T]{K: k, Relations: make(map[string]*Relation[T])}
}

// Put registers rel under its schema name.
func (d *Database[T]) Put(rel *Relation[T]) {
	d.Relations[strings.ToLower(rel.Schema().Name)] = rel
}

// Get returns the named relation or nil.
func (d *Database[T]) Get(name string) *Relation[T] {
	return d.Relations[strings.ToLower(name)]
}

// MapAnnotations lifts a mapping h : K → K' to relations by applying it to
// every tuple's annotation (Section 2.3). When h is a semiring homomorphism
// the lifted map commutes with RA⁺ queries.
func MapAnnotations[A, B any](r *Relation[A], kb semiring.Semiring[B], h semiring.Hom[A, B]) *Relation[B] {
	out := New(kb, r.schema)
	r.ForEach(func(t types.Tuple, ann A) {
		out.Add(t, h(ann))
	})
	return out
}

// MapDatabase lifts a mapping over every relation of a database.
func MapDatabase[A, B any](d *Database[A], kb semiring.Semiring[B], h semiring.Hom[A, B]) *Database[B] {
	out := NewDatabase(kb)
	for _, r := range d.Relations {
		out.Put(MapAnnotations(r, kb, h))
	}
	return out
}
