package rewrite

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/types"
)

// Attribute-level uncertainty (AU-DB) rewriting, after the authors'
// follow-up paper "Efficient Uncertainty Tracking for Complex Queries with
// Attribute-level Bounds" (arXiv:2102.11796). Where the tuple-level UA
// encoding carries one trailing certainty bit, the AU encoding carries a
// [lower, best-guess, upper] range per attribute plus two row-existence
// annotations, which survive exactly the operations tuple-level UA cannot
// express: aggregation over uncertain data.
//
// Encoded layout (the "spine" layout): a logical relation with k attributes
// is stored as 3k+2 columns —
//
//	logical attribute i  →  column 3i   = i's lower bound   (name + "__lo")
//	                        column 3i+1 = i's best guess    (original name)
//	                        column 3i+2 = i's upper bound   (name + "__hi")
//	column 3k   = __ec  ∈ {0,1}: the row exists in EVERY possible world
//	column 3k+1 = __ebg ∈ {0,1}: the row exists in the best-guess world
//
// Every encoded row is possible (upper multiplicity 1), so the row's
// multiplicity range is [__ec, __ebg, 1]. A row kept by a filter only in
// some worlds stays in the encoding as a "phantom" with __ec = 0 — dropping
// it would unsoundly shrink aggregate upper bounds.
//
// Soundness invariant (what the differential harness pins): for every
// possible world w of the input, each result row of the deterministic query
// over w maps to a distinct encoded output row whose [lo, hi] boxes contain
// the row's values, and every __ec = 1 output row is so matched in every
// world; the best-guess spine restricted to __ebg = 1 rows is exactly the
// deterministic answer over the best-guess world.
const (
	// AttrLoSuffix and AttrHiSuffix name the bound spines of an attribute.
	AttrLoSuffix = "__lo"
	AttrHiSuffix = "__hi"
	// AttrECName is the exists-certain column, AttrEBGName the
	// exists-in-best-guess-world column.
	AttrECName  = "__ec"
	AttrEBGName = "__ebg"
)

// attrSchema derives the encoded schema from a logical one.
func attrSchema(logical types.Schema) types.Schema {
	attrs := make([]string, 0, 3*len(logical.Attrs)+2)
	for _, a := range logical.Attrs {
		attrs = append(attrs, a+AttrLoSuffix, a, a+AttrHiSuffix)
	}
	attrs = append(attrs, AttrECName, AttrEBGName)
	return types.Schema{Name: logical.Name, Attrs: attrs}
}

// attrLogicalAttrs inverts attrSchema: the best-guess spine names.
func attrLogicalAttrs(encoded []string) []string {
	k := (len(encoded) - 2) / 3
	out := make([]string, k)
	for i := range out {
		out[i] = encoded[3*i+1]
	}
	return out
}

// RewriteAttrBounds transforms a deterministic logical plan (compiled
// against logical schemas) into its AU-DB equivalent over the spine
// layout. masks reports, per base table, which logical columns may vary
// across possible worlds (nil means all certain). The rewrite is purely
// logical: the output is an ordinary deterministic plan over 3k+2-column
// relations, so the optimizer, the morsel-parallel engine, spilling, and
// fused pipelines all apply unchanged.
func RewriteAttrBounds(n algebra.Node, masks func(table string) []bool) (algebra.Node, error) {
	out, _, err := rewriteAttrNode(n, masks)
	return out, err
}

// attrColMap resolves a logical column reference to its spine positions in
// some encoded layout: base(i) is the position of column i's lower spine
// (best guess at +1, upper at +2), unc(i) whether it may range-vary.
type attrColMap struct {
	base func(i int) int
	unc  func(i int) bool
}

// singleMap is the layout of one rewritten input: logical i at spine 3i.
func singleMap(mask []bool) attrColMap {
	return attrColMap{
		base: func(i int) int { return 3 * i },
		unc:  func(i int) bool { return i < len(mask) && mask[i] },
	}
}

// joinMap is the layout of a rewritten join's raw output: the left child's
// 3·kl+2 columns, then the right child's. Logical positions are relative to
// the concatenated logical schemas (left 0..kl-1, right kl..).
func joinMap(kl int, lMask, rMask []bool) attrColMap {
	return attrColMap{
		base: func(i int) int {
			if i < kl {
				return 3 * i
			}
			return (3*kl + 2) + 3*(i-kl)
		},
		unc: func(i int) bool {
			if i < kl {
				return i < len(lMask) && lMask[i]
			}
			return i-kl < len(rMask) && rMask[i-kl]
		},
	}
}

// exprBounds is the three-armed rewrite of one logical expression: lo and
// hi bound the expression's value in every possible world, bg is its value
// in the best-guess world. When unc is false the expression is
// world-invariant and all three arms are the same best-guess remap.
type exprBounds struct {
	lo, bg, hi algebra.Expr
	unc        bool
}

// certainBounds wraps a world-invariant expression.
func certainBounds(e algebra.Expr) exprBounds { return exprBounds{lo: e, bg: e, hi: e} }

// bgRemap rewrites a logical expression to read only best-guess spines.
func bgRemap(e algebra.Expr, cm attrColMap) algebra.Expr {
	return algebra.MapCols(e, func(c algebra.Col) algebra.Expr {
		return algebra.Col{Idx: cm.base(c.Idx) + 1, Name: c.Name}
	})
}

// usesUncertain reports whether e reads any range-uncertain column.
func usesUncertain(e algebra.Expr, cm attrColMap) bool {
	found := false
	algebra.WalkCols(e, func(c algebra.Col) {
		if cm.unc(c.Idx) {
			found = true
		}
	})
	return found
}

func bin(op algebra.BinOp, l, r algebra.Expr) algebra.Expr { return algebra.Bin{Op: op, L: l, R: r} }

func sfunc(name string, args ...algebra.Expr) algebra.Expr {
	return algebra.ScalarFunc{Name: name, Args: args}
}

// attrExprBounds computes the range propagation of Figure 6 of the AU-DB
// paper over the expression language: arithmetic combines interval
// endpoints, comparisons split into a certainly-true arm (lo) and a
// possibly-true arm (hi), and the connectives compose arm-wise. Expressions
// with no range-uncertain input collapse to a single best-guess remap —
// that shortcut is what keeps CASE / LIKE / IN / string functions available
// over certain columns.
//
// Uncertain inputs are assumed non-NULL (the encoders guarantee it), which
// makes NULL-ness world-invariant for every accepted shape: NULLs can then
// only arise from certain subexpressions or from division by a certain
// zero, identically in every world.
func attrExprBounds(e algebra.Expr, cm attrColMap) (exprBounds, error) {
	if !usesUncertain(e, cm) {
		return certainBounds(bgRemap(e, cm)), nil
	}
	switch ex := e.(type) {
	case algebra.Col:
		b := cm.base(ex.Idx)
		return exprBounds{
			lo:  algebra.Col{Idx: b, Name: ex.Name + AttrLoSuffix},
			bg:  algebra.Col{Idx: b + 1, Name: ex.Name},
			hi:  algebra.Col{Idx: b + 2, Name: ex.Name + AttrHiSuffix},
			unc: true,
		}, nil

	case algebra.Bin:
		l, err := attrExprBounds(ex.L, cm)
		if err != nil {
			return exprBounds{}, err
		}
		r, err := attrExprBounds(ex.R, cm)
		if err != nil {
			return exprBounds{}, err
		}
		bg := bin(ex.Op, l.bg, r.bg)
		switch ex.Op {
		case algebra.OpAdd:
			return exprBounds{lo: bin(ex.Op, l.lo, r.lo), bg: bg, hi: bin(ex.Op, l.hi, r.hi), unc: true}, nil
		case algebra.OpSub:
			return exprBounds{lo: bin(ex.Op, l.lo, r.hi), bg: bg, hi: bin(ex.Op, l.hi, r.lo), unc: true}, nil
		case algebra.OpMul:
			// Sign-oblivious interval product: the extrema sit at one of the
			// four endpoint products.
			ll, lh, hl, hh := bin(ex.Op, l.lo, r.lo), bin(ex.Op, l.lo, r.hi), bin(ex.Op, l.hi, r.lo), bin(ex.Op, l.hi, r.hi)
			return exprBounds{
				lo:  sfunc("least", ll, lh, hl, hh),
				bg:  bg,
				hi:  sfunc("greatest", ll, lh, hl, hh),
				unc: true,
			}, nil
		case algebra.OpDiv:
			if r.unc {
				// A range-uncertain divisor may span zero, where the quotient
				// interval is unbounded; reject rather than emit bounds that
				// silently fail to contain some world.
				return exprBounds{}, fmt.Errorf("attrbounds: division by a range-uncertain expression is unsupported")
			}
			// Certain divisor of statically unknown sign: extrema at the two
			// endpoint quotients. A zero divisor yields NULL in every arm in
			// every world, matching deterministic semantics.
			a, b := bin(ex.Op, l.lo, r.bg), bin(ex.Op, l.hi, r.bg)
			return exprBounds{lo: sfunc("least", a, b), bg: bg, hi: sfunc("greatest", a, b), unc: true}, nil
		case algebra.OpMod, algebra.OpConcat:
			return exprBounds{}, fmt.Errorf("attrbounds: %s over range-uncertain attributes is unsupported", ex)

		case algebra.OpLt:
			return exprBounds{lo: bin(algebra.OpLt, l.hi, r.lo), bg: bg, hi: bin(algebra.OpLt, l.lo, r.hi), unc: true}, nil
		case algebra.OpLe:
			return exprBounds{lo: bin(algebra.OpLe, l.hi, r.lo), bg: bg, hi: bin(algebra.OpLe, l.lo, r.hi), unc: true}, nil
		case algebra.OpGt:
			return exprBounds{lo: bin(algebra.OpGt, l.lo, r.hi), bg: bg, hi: bin(algebra.OpGt, l.hi, r.lo), unc: true}, nil
		case algebra.OpGe:
			return exprBounds{lo: bin(algebra.OpGe, l.lo, r.hi), bg: bg, hi: bin(algebra.OpGe, l.hi, r.lo), unc: true}, nil
		case algebra.OpEq:
			// Certainly equal: both ranges are the same single point.
			// Possibly equal: the ranges overlap. Emitted as comparisons over
			// the bound spines, never as an Eq over them, so the optimizer
			// cannot extract a hash-join key from an uncertain equality.
			return exprBounds{
				lo:  bin(algebra.OpAnd, bin(algebra.OpGe, l.lo, r.hi), bin(algebra.OpGe, r.lo, l.hi)),
				bg:  bg,
				hi:  bin(algebra.OpAnd, bin(algebra.OpLe, l.lo, r.hi), bin(algebra.OpLe, r.lo, l.hi)),
				unc: true,
			}, nil
		case algebra.OpNe:
			// Certainly unequal: ranges disjoint. Possibly unequal: not
			// certainly equal (De Morgan of the Eq arms).
			return exprBounds{
				lo:  bin(algebra.OpOr, bin(algebra.OpLt, l.hi, r.lo), bin(algebra.OpLt, r.hi, l.lo)),
				bg:  bg,
				hi:  bin(algebra.OpOr, bin(algebra.OpLt, l.lo, r.hi), bin(algebra.OpLt, r.lo, l.hi)),
				unc: true,
			}, nil
		case algebra.OpAnd, algebra.OpOr:
			return exprBounds{lo: bin(ex.Op, l.lo, r.lo), bg: bg, hi: bin(ex.Op, l.hi, r.hi), unc: true}, nil
		default:
			return exprBounds{}, fmt.Errorf("attrbounds: operator in %s over range-uncertain attributes is unsupported", ex)
		}

	case algebra.Not:
		in, err := attrExprBounds(ex.E, cm)
		if err != nil {
			return exprBounds{}, err
		}
		// Negation swaps the certainty arms: NOT p is certainly true exactly
		// when p is not even possibly true.
		return exprBounds{lo: algebra.Not{E: in.hi}, bg: algebra.Not{E: in.bg}, hi: algebra.Not{E: in.lo}, unc: true}, nil

	case algebra.Neg:
		in, err := attrExprBounds(ex.E, cm)
		if err != nil {
			return exprBounds{}, err
		}
		return exprBounds{lo: algebra.Neg{E: in.hi}, bg: algebra.Neg{E: in.bg}, hi: algebra.Neg{E: in.lo}, unc: true}, nil

	case algebra.IsNullE:
		// NULL-ness is world-invariant (see above), so the test itself is
		// certain even over a range-uncertain expression.
		in, err := attrExprBounds(ex.E, cm)
		if err != nil {
			return exprBounds{}, err
		}
		return certainBounds(algebra.IsNullE{E: in.bg, Negated: ex.Negated}), nil

	case algebra.BetweenE:
		inner := algebra.Expr(algebra.Bin{Op: algebra.OpAnd,
			L: algebra.Bin{Op: algebra.OpGe, L: ex.E, R: ex.Lo},
			R: algebra.Bin{Op: algebra.OpLe, L: ex.E, R: ex.Hi},
		})
		if ex.Negated {
			inner = algebra.Not{E: inner}
		}
		return attrExprBounds(inner, cm)

	case algebra.ScalarFunc:
		switch ex.Name {
		case "least", "greatest":
			// Monotone in every argument: bounds compose arm-wise. NULL
			// poisoning is world-invariant per the non-NULL encoding contract.
			lo := make([]algebra.Expr, len(ex.Args))
			bg := make([]algebra.Expr, len(ex.Args))
			hi := make([]algebra.Expr, len(ex.Args))
			for i, a := range ex.Args {
				ab, err := attrExprBounds(a, cm)
				if err != nil {
					return exprBounds{}, err
				}
				lo[i], bg[i], hi[i] = ab.lo, ab.bg, ab.hi
			}
			return exprBounds{
				lo:  algebra.ScalarFunc{Name: ex.Name, Args: lo},
				bg:  algebra.ScalarFunc{Name: ex.Name, Args: bg},
				hi:  algebra.ScalarFunc{Name: ex.Name, Args: hi},
				unc: true,
			}, nil
		case "abs":
			in, err := attrExprBounds(ex.Args[0], cm)
			if err != nil {
				return exprBounds{}, err
			}
			// |x| over [lo, hi]: upper is the larger endpoint magnitude;
			// lower is 0 when the range spans zero, else the nearer endpoint.
			zero := algebra.Const{V: types.NewInt(0)}
			return exprBounds{
				lo:  sfunc("greatest", in.lo, algebra.Neg{E: in.hi}, zero),
				bg:  sfunc("abs", in.bg),
				hi:  sfunc("greatest", in.hi, algebra.Neg{E: in.lo}),
				unc: true,
			}, nil
		case "coalesce":
			// Per-argument NULL-ness is world-invariant, so which argument
			// wins is the same in every world: compose arm-wise.
			lo := make([]algebra.Expr, len(ex.Args))
			bg := make([]algebra.Expr, len(ex.Args))
			hi := make([]algebra.Expr, len(ex.Args))
			for i, a := range ex.Args {
				ab, err := attrExprBounds(a, cm)
				if err != nil {
					return exprBounds{}, err
				}
				lo[i], bg[i], hi[i] = ab.lo, ab.bg, ab.hi
			}
			return exprBounds{
				lo:  algebra.ScalarFunc{Name: "coalesce", Args: lo},
				bg:  algebra.ScalarFunc{Name: "coalesce", Args: bg},
				hi:  algebra.ScalarFunc{Name: "coalesce", Args: hi},
				unc: true,
			}, nil
		default:
			return exprBounds{}, fmt.Errorf("attrbounds: function %s over range-uncertain attributes is unsupported", ex.Name)
		}

	default:
		return exprBounds{}, fmt.Errorf("attrbounds: %T over range-uncertain attributes is unsupported", e)
	}
}

// gate01 turns a boolean arm into an Int64 0/1 factor for the existence
// annotations: NULL (unknown) gates to 0 on the certain side — exactly the
// sound choice, since an unknown predicate never certifies existence.
func gate01(cond algebra.Expr) algebra.Expr {
	return algebra.CaseExpr{
		Whens: []algebra.CaseWhen{{Cond: cond, Result: algebra.Const{V: types.NewInt(1)}}},
		Else:  algebra.Const{V: types.NewInt(0)},
	}
}

// rewriteAttrNode returns the rewritten node plus the per-logical-column
// uncertainty mask of its output. The annotation columns always sit at
// positions 3k and 3k+1 of the 3k+2-column output.
func rewriteAttrNode(n algebra.Node, masks func(string) []bool) (algebra.Node, []bool, error) {
	switch node := n.(type) {
	case *algebra.Scan:
		mask := masks(node.Table)
		if mask == nil {
			mask = make([]bool, node.TblSchema.Arity())
		}
		if len(mask) != node.TblSchema.Arity() {
			return nil, nil, fmt.Errorf("attrbounds: mask arity %d does not match table %s arity %d",
				len(mask), node.Table, node.TblSchema.Arity())
		}
		return &algebra.Scan{Table: node.Table, TblSchema: attrSchema(node.TblSchema)}, mask, nil

	case *algebra.Filter:
		in, mask, err := rewriteAttrNode(node.Input, masks)
		if err != nil {
			return nil, nil, err
		}
		cm := singleMap(mask)
		p, err := attrExprBounds(node.Pred, cm)
		if err != nil {
			return nil, nil, err
		}
		if !p.unc {
			// World-invariant predicate: a plain filter, annotations ride
			// through untouched.
			return &algebra.Filter{Input: in, Pred: p.bg}, mask, nil
		}
		// Keep every possibly-passing row; rows that pass only in some
		// worlds survive as phantoms with their existence annotations
		// downgraded by the certainly-passes / passes-in-best-guess arms.
		flt := &algebra.Filter{Input: in, Pred: p.hi}
		k := len(mask)
		attrs := in.Schema().Attrs
		exprs := make([]algebra.Expr, 0, 3*k+2)
		names := make([]string, 0, 3*k+2)
		for i := 0; i < 3*k; i++ {
			exprs = append(exprs, algebra.Col{Idx: i, Name: attrs[i]})
			names = append(names, attrs[i])
		}
		exprs = append(exprs,
			bin(algebra.OpMul, algebra.Col{Idx: 3 * k, Name: AttrECName}, gate01(p.lo)),
			bin(algebra.OpMul, algebra.Col{Idx: 3*k + 1, Name: AttrEBGName}, gate01(p.bg)),
		)
		names = append(names, AttrECName, AttrEBGName)
		return &algebra.Project{Input: flt, Exprs: exprs, Names: names}, mask, nil

	case *algebra.Project:
		in, mask, err := rewriteAttrNode(node.Input, masks)
		if err != nil {
			return nil, nil, err
		}
		cm := singleMap(mask)
		k := len(mask)
		exprs := make([]algebra.Expr, 0, 3*len(node.Exprs)+2)
		names := make([]string, 0, 3*len(node.Exprs)+2)
		outMask := make([]bool, len(node.Exprs))
		for j, e := range node.Exprs {
			b, err := attrExprBounds(e, cm)
			if err != nil {
				return nil, nil, err
			}
			outMask[j] = b.unc
			exprs = append(exprs, b.lo, b.bg, b.hi)
			names = append(names, node.Names[j]+AttrLoSuffix, node.Names[j], node.Names[j]+AttrHiSuffix)
		}
		exprs = append(exprs,
			algebra.Col{Idx: 3 * k, Name: AttrECName},
			algebra.Col{Idx: 3*k + 1, Name: AttrEBGName},
		)
		names = append(names, AttrECName, AttrEBGName)
		return &algebra.Project{Input: in, Exprs: exprs, Names: names}, outMask, nil

	case *algebra.Join:
		l, lMask, err := rewriteAttrNode(node.Left, masks)
		if err != nil {
			return nil, nil, err
		}
		r, rMask, err := rewriteAttrNode(node.Right, masks)
		if err != nil {
			return nil, nil, err
		}
		kl, kr := len(lMask), len(rMask)
		// Hash-join keys must be world-invariant: matching on a range would
		// need the possibly-equal relaxation, which is not an equi-join.
		equiL := make([]int, len(node.EquiL))
		for i, c := range node.EquiL {
			if lMask[c] {
				return nil, nil, fmt.Errorf("attrbounds: equi-join on range-uncertain attribute %s", node.Left.Schema().Attrs[c])
			}
			equiL[i] = 3*c + 1
		}
		equiR := make([]int, len(node.EquiR))
		for i, c := range node.EquiR {
			if rMask[c] {
				return nil, nil, fmt.Errorf("attrbounds: equi-join on range-uncertain attribute %s", node.Right.Schema().Attrs[c])
			}
			equiR[i] = 3*c + 1
		}
		cm := joinMap(kl, lMask, rMask)
		var p exprBounds
		if node.Residual != nil {
			if p, err = attrExprBounds(node.Residual, cm); err != nil {
				return nil, nil, err
			}
		}
		join := &algebra.Join{Left: l, Right: r, EquiL: equiL, EquiR: equiR}
		if node.Residual != nil {
			if p.unc {
				join.Residual = p.hi // keep every possibly-matching pair
			} else {
				join.Residual = p.bg
			}
		}
		// Reproject the raw l'++r' layout back into spine form: left
		// triples, right triples, combined annotations.
		lAttrs, rAttrs := node.Left.Schema().Attrs, node.Right.Schema().Attrs
		exprs := make([]algebra.Expr, 0, 3*(kl+kr)+2)
		names := make([]string, 0, 3*(kl+kr)+2)
		for i := 0; i < kl; i++ {
			for d := 0; d < 3; d++ {
				exprs = append(exprs, algebra.Col{Idx: 3*i + d})
			}
			names = append(names, lAttrs[i]+AttrLoSuffix, lAttrs[i], lAttrs[i]+AttrHiSuffix)
		}
		roff := 3*kl + 2
		for i := 0; i < kr; i++ {
			for d := 0; d < 3; d++ {
				exprs = append(exprs, algebra.Col{Idx: roff + 3*i + d})
			}
			names = append(names, rAttrs[i]+AttrLoSuffix, rAttrs[i], rAttrs[i]+AttrHiSuffix)
		}
		ec := sfunc("least",
			algebra.Col{Idx: 3 * kl, Name: AttrECName},
			algebra.Col{Idx: roff + 3*kr, Name: AttrECName})
		ebg := sfunc("least",
			algebra.Col{Idx: 3*kl + 1, Name: AttrEBGName},
			algebra.Col{Idx: roff + 3*kr + 1, Name: AttrEBGName})
		if node.Residual != nil && p.unc {
			ec = bin(algebra.OpMul, ec, gate01(p.lo))
			ebg = bin(algebra.OpMul, ebg, gate01(p.bg))
		}
		exprs = append(exprs, ec, ebg)
		names = append(names, AttrECName, AttrEBGName)
		outMask := append(append([]bool{}, lMask...), rMask...)
		return &algebra.Project{Input: join, Exprs: exprs, Names: names}, outMask, nil

	case *algebra.UnionAll:
		l, lMask, err := rewriteAttrNode(node.Left, masks)
		if err != nil {
			return nil, nil, err
		}
		r, rMask, err := rewriteAttrNode(node.Right, masks)
		if err != nil {
			return nil, nil, err
		}
		outMask := make([]bool, len(lMask))
		for i := range outMask {
			outMask[i] = lMask[i] || (i < len(rMask) && rMask[i])
		}
		return &algebra.UnionAll{Left: l, Right: r}, outMask, nil

	case *algebra.Aggregate:
		return rewriteAttrAggregate(node, masks)

	case *algebra.Sort:
		in, mask, err := rewriteAttrNode(node.Input, masks)
		if err != nil {
			return nil, nil, err
		}
		cm := singleMap(mask)
		keys := make([]algebra.SortKey, len(node.Keys))
		for i, sk := range node.Keys {
			b, err := attrExprBounds(sk.Expr, cm)
			if err != nil {
				return nil, nil, err
			}
			// Order by the best guess: display order, annotations unharmed.
			keys[i] = algebra.SortKey{Expr: b.bg, Desc: sk.Desc}
		}
		return &algebra.Sort{Input: in, Keys: keys}, mask, nil

	case *algebra.Limit:
		in, mask, err := rewriteAttrNode(node.Input, masks)
		if err != nil {
			return nil, nil, err
		}
		return &algebra.Limit{Input: in, N: node.N}, mask, nil

	case *algebra.Distinct:
		return nil, nil, fmt.Errorf("attrbounds: DISTINCT over range-annotated relations is unsupported (use bag queries)")
	default:
		return nil, nil, fmt.Errorf("attrbounds: unsupported plan node %T", n)
	}
}

// rewriteAttrAggregate expands one logical aggregate into an inner
// deterministic aggregate over bound-combining component aggregates plus an
// outer projection assembling the [lo, bg, hi] triples — the paper's
// headline case that tuple-level UA rejects outright.
//
// Per aggregate, with per-row annotations ec/ebg and argument bounds
// [aLo, aBg, aHi]:
//
//	COUNT(*)  [Σec,               Σebg,              COUNT(*)]
//	COUNT(e)  [cnt(ec·e),         cnt(ebg·e),        cnt(e)]
//	SUM(e)    [Σ ec?aLo:min(aLo,0), Σ ebg?aBg,       Σ ec?aHi:max(aHi,0)]
//	MIN(e)    [min(aLo),          min(ebg?aBg),      min over certain rows of
//	                                                 aHi, else max(aHi)]
//	MAX(e)    dual of MIN
//	AVG(e)    [min(aLo),          avg(ebg?aBg),      max(aHi)]
//
// Group keys must be world-invariant (grouping by a range would need group
// merging across worlds); a group's existence annotations are the max of
// its members' — one certain member row makes the group certain.
func rewriteAttrAggregate(node *algebra.Aggregate, masks func(string) []bool) (algebra.Node, []bool, error) {
	in, mask, err := rewriteAttrNode(node.Input, masks)
	if err != nil {
		return nil, nil, err
	}
	cm := singleMap(mask)
	k := len(mask)
	ecCol := algebra.Col{Idx: 3 * k, Name: AttrECName}
	ebgCol := algebra.Col{Idx: 3*k + 1, Name: AttrEBGName}
	ifEC := func(e algebra.Expr) algebra.Expr {
		return algebra.CaseExpr{Whens: []algebra.CaseWhen{{
			Cond: bin(algebra.OpEq, ecCol, algebra.Const{V: types.NewInt(1)}), Result: e,
		}}}
	}
	ifEBG := func(e algebra.Expr) algebra.Expr {
		return algebra.CaseExpr{Whens: []algebra.CaseWhen{{
			Cond: bin(algebra.OpEq, ebgCol, algebra.Const{V: types.NewInt(1)}), Result: e,
		}}}
	}

	groupBy := make([]algebra.Expr, len(node.GroupBy))
	for i, g := range node.GroupBy {
		b, err := attrExprBounds(g, cm)
		if err != nil {
			return nil, nil, err
		}
		if b.unc {
			return nil, nil, fmt.Errorf("attrbounds: GROUP BY over range-uncertain expression %s is unsupported", g)
		}
		groupBy[i] = b.bg
	}
	nG := len(groupBy)

	var inner []algebra.AggSpec
	addAgg := func(f algebra.AggFunc, arg algebra.Expr, star bool) int {
		idx := nG + len(inner)
		inner = append(inner, algebra.AggSpec{
			Func: f, Arg: arg, Star: star, Name: fmt.Sprintf("__ab%d", len(inner)),
		})
		return idx
	}
	col := func(idx int) algebra.Expr { return algebra.Col{Idx: idx} }
	zeroInt := algebra.Const{V: types.NewInt(0)}

	// Outer projection triples, assembled per original aggregate.
	type triple struct{ lo, bg, hi algebra.Expr }
	triples := make([]triple, len(node.Aggs))
	for ai, spec := range node.Aggs {
		if spec.Star {
			if spec.Func != algebra.AggCount {
				return nil, nil, fmt.Errorf("attrbounds: %s(*) is unsupported", spec)
			}
			// A world's group cardinality is between its certain members and
			// all possible members. COALESCE guards the empty global group,
			// where SUM is NULL but the true count is 0.
			lo := addAgg(algebra.AggSum, ecCol, false)
			bg := addAgg(algebra.AggSum, ebgCol, false)
			hi := addAgg(algebra.AggCount, nil, true)
			triples[ai] = triple{
				lo: sfunc("coalesce", col(lo), zeroInt),
				bg: sfunc("coalesce", col(bg), zeroInt),
				hi: col(hi),
			}
			continue
		}
		a, err := attrExprBounds(spec.Arg, cm)
		if err != nil {
			return nil, nil, err
		}
		switch spec.Func {
		case algebra.AggCount:
			// NULL-ness of the argument is world-invariant, so counting
			// non-NULLs only varies with row existence.
			lo := addAgg(algebra.AggCount, ifEC(a.bg), false)
			bg := addAgg(algebra.AggCount, ifEBG(a.bg), false)
			hi := addAgg(algebra.AggCount, a.bg, false)
			triples[ai] = triple{lo: col(lo), bg: col(bg), hi: col(hi)}
		case algebra.AggSum:
			// A phantom row (ec = 0) contributes its value or nothing,
			// whichever bounds the sum: min(aLo, 0) below, max(aHi, 0) above.
			zlo := bin(algebra.OpMul, a.lo, zeroInt) // typed zero: int stays int
			zhi := bin(algebra.OpMul, a.hi, zeroInt)
			lo := addAgg(algebra.AggSum, algebra.CaseExpr{
				Whens: []algebra.CaseWhen{{Cond: bin(algebra.OpEq, ecCol, algebra.Const{V: types.NewInt(1)}), Result: a.lo}},
				Else:  sfunc("least", a.lo, zlo),
			}, false)
			bg := addAgg(algebra.AggSum, ifEBG(a.bg), false)
			hi := addAgg(algebra.AggSum, algebra.CaseExpr{
				Whens: []algebra.CaseWhen{{Cond: bin(algebra.OpEq, ecCol, algebra.Const{V: types.NewInt(1)}), Result: a.hi}},
				Else:  sfunc("greatest", a.hi, zhi),
			}, false)
			triples[ai] = triple{lo: col(lo), bg: col(bg), hi: col(hi)}
		case algebra.AggMin:
			// Lower: no world's minimum undercuts the least lower bound.
			// Upper: a certain member caps the minimum at its upper bound;
			// with no certain member, any world keeps at least one member
			// (if the group exists there), capped by the largest upper.
			lo := addAgg(algebra.AggMin, a.lo, false)
			bg := addAgg(algebra.AggMin, ifEBG(a.bg), false)
			certHi := addAgg(algebra.AggMin, ifEC(a.hi), false)
			allHi := addAgg(algebra.AggMax, a.hi, false)
			triples[ai] = triple{lo: col(lo), bg: col(bg), hi: sfunc("coalesce", col(certHi), col(allHi))}
		case algebra.AggMax:
			hi := addAgg(algebra.AggMax, a.hi, false)
			bg := addAgg(algebra.AggMax, ifEBG(a.bg), false)
			certLo := addAgg(algebra.AggMax, ifEC(a.lo), false)
			allLo := addAgg(algebra.AggMin, a.lo, false)
			triples[ai] = triple{lo: sfunc("coalesce", col(certLo), col(allLo)), bg: col(bg), hi: col(hi)}
		case algebra.AggAvg:
			// Any subset's mean lies between the least lower and greatest
			// upper bound of the members.
			lo := addAgg(algebra.AggMin, a.lo, false)
			bg := addAgg(algebra.AggAvg, ifEBG(a.bg), false)
			hi := addAgg(algebra.AggMax, a.hi, false)
			triples[ai] = triple{lo: col(lo), bg: col(bg), hi: col(hi)}
		default:
			return nil, nil, fmt.Errorf("attrbounds: aggregate %s is unsupported", spec)
		}
	}

	// Group existence: one member row certain in every world (or present in
	// the best-guess world) makes the group so. The global group exists in
	// every world unconditionally — even over an empty input.
	var ecOut, ebgOut algebra.Expr
	if nG == 0 {
		ecOut = algebra.Const{V: types.NewInt(1)}
		ebgOut = algebra.Const{V: types.NewInt(1)}
	} else {
		ecOut = col(addAgg(algebra.AggMax, ecCol, false))
		ebgOut = col(addAgg(algebra.AggMax, ebgCol, false))
	}

	agg := &algebra.Aggregate{Input: in, GroupBy: groupBy, GroupNames: node.GroupNames, Aggs: inner}

	exprs := make([]algebra.Expr, 0, 3*(nG+len(node.Aggs))+2)
	names := make([]string, 0, 3*(nG+len(node.Aggs))+2)
	for i := 0; i < nG; i++ {
		g := algebra.Col{Idx: i, Name: node.GroupNames[i]}
		exprs = append(exprs, g, g, g)
		names = append(names, node.GroupNames[i]+AttrLoSuffix, node.GroupNames[i], node.GroupNames[i]+AttrHiSuffix)
	}
	for ai, tr := range triples {
		exprs = append(exprs, tr.lo, tr.bg, tr.hi)
		name := node.Aggs[ai].Name
		names = append(names, name+AttrLoSuffix, name, name+AttrHiSuffix)
	}
	exprs = append(exprs, ecOut, ebgOut)
	names = append(names, AttrECName, AttrEBGName)

	outMask := make([]bool, nG+len(node.Aggs))
	for i := nG; i < len(outMask); i++ {
		outMask[i] = true // aggregate results vary with world membership
	}
	return &algebra.Project{Input: agg, Exprs: exprs, Names: names}, outMask, nil
}
