package rewrite

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/physical"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// runFront drives the frontend through its single non-deprecated entrypoint
// and materializes the table shape the assertions compare.
func runFront(front *Frontend, query string) (*engine.Table, error) {
	res, err := front.Query(context.Background(), query, front.Opts)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

// runDet plans and runs a deterministic SQL string against cat via
// engine.Session.
func runDet(cat *engine.Catalog, query string) (*engine.Table, error) {
	plan, err := engine.NewPlanner(cat).PlanSQL(query)
	if err != nil {
		return nil, err
	}
	res, err := engine.NewSession(cat, physical.Options{}).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

func iv(v int64) types.Value  { return types.NewInt(v) }
func sv(v string) types.Value { return types.NewString(v) }

// geoUADB builds the paper's running example (Figures 2/3) as a UA-database:
// ADDR joined with LOC, tuples 2 and 3 ambiguous, first alternative chosen.
func geoUADB() *uadb.Database[int64] {
	addr := models.NewXRelation(types.NewSchema("addr", "id", "lat", "lon"))
	addr.AddCertain(types.Tuple{iv(1), types.NewFloat(42.93), types.NewFloat(-78.81)})
	addr.AddChoice(
		types.Tuple{iv(2), types.NewFloat(42.91), types.NewFloat(-78.89)},
		types.Tuple{iv(2), types.NewFloat(32.25), types.NewFloat(-110.87)},
	)
	addr.AddChoice(
		types.Tuple{iv(3), types.NewFloat(42.91), types.NewFloat(-78.84)},
		types.Tuple{iv(3), types.NewFloat(42.90), types.NewFloat(-78.85)},
	)
	addr.AddCertain(types.Tuple{iv(4), types.NewFloat(42.93), types.NewFloat(-78.80)})

	loc := models.NewXRelation(types.NewSchema("loc", "locale", "state", "lat1", "lon1", "lat2", "lon2"))
	add := func(name, state string, a, b, c, d float64) {
		loc.AddCertain(types.Tuple{sv(name), sv(state),
			types.NewFloat(a), types.NewFloat(b), types.NewFloat(c), types.NewFloat(d)})
	}
	add("Lasalle", "NY", 42.93, -78.83, 42.95, -78.81)
	add("Tucson", "AZ", 31.99, -111.045, 32.32, -110.71)
	add("GrantFerry", "NY", 42.91, -78.91, 42.92, -78.88)
	add("Kingsley", "NY", 42.90, -78.85, 42.91, -78.84)
	add("Kensington", "NY", 42.93, -78.81, 42.96, -78.78)

	k := semiring.Nat
	db := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](k))
	db.Put(uadb.FromXDB(addr))
	db.Put(uadb.FromXDB(loc))
	return db
}

func TestPaperExampleQuery(t *testing.T) {
	db := geoUADB()
	front := NewFrontend(EncodeUADatabase(db))
	// The spatial join of Example 1 (contains() spelled out as range
	// predicates; boundary-inclusive).
	res, err := runFront(front, `
		SELECT a.id, l.locale, l.state
		FROM addr a, loc l
		WHERE a.lat >= l.lat1 AND a.lat <= l.lat2
		  AND a.lon >= l.lon1 AND a.lon <= l.lon2`)
	if err != nil {
		t.Fatal(err)
	}
	ua, err := UAFromTable(res)
	if err != nil {
		t.Fatal(err)
	}
	get := func(id int64, locale, state string) semiring.Pair[int64] {
		return ua.Get(types.Tuple{iv(id), sv(locale), sv(state)})
	}
	// Figure 3d: 1/Lasalle certain, 2/GrantFerry uncertain (first
	// alternative), 3/Kingsley uncertain (mislabeled but present),
	// 4/Kensington certain.
	if p := get(1, "Lasalle", "NY"); p.Cert != 1 || p.Det != 1 {
		t.Errorf("tuple 1 = %+v, want certain", p)
	}
	if p := get(2, "GrantFerry", "NY"); p.Cert != 0 || p.Det != 1 {
		t.Errorf("tuple 2 = %+v, want uncertain", p)
	}
	if p := get(3, "Kingsley", "NY"); p.Cert != 0 || p.Det != 1 {
		t.Errorf("tuple 3 = %+v, want present but conservatively uncertain", p)
	}
	if p := get(4, "Kensington", "NY"); p.Cert != 1 || p.Det != 1 {
		t.Errorf("tuple 4 = %+v, want certain", p)
	}
	if p := get(2, "Tucson", "AZ"); p.Det != 0 {
		t.Errorf("Tucson is not in the best-guess world: %+v", p)
	}
}

// randomUADB builds a random bag UA-database with R(a,b) and S(b,c).
func randomUADB(rng *rand.Rand) *uadb.Database[int64] {
	k := semiring.Nat
	db := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](k))
	for _, spec := range []struct {
		name  string
		attrs []string
	}{{"r", []string{"a", "b"}}, {"s", []string{"c", "d"}}} {
		label := kdb.New[int64](k, types.NewSchema(spec.name, spec.attrs...))
		world := kdb.New[int64](k, types.NewSchema(spec.name, spec.attrs...))
		for i := 0; i < rng.Intn(6)+2; i++ {
			tp := types.Tuple{iv(rng.Int63n(3)), iv(rng.Int63n(3))}
			d := rng.Int63n(3) + 1
			c := rng.Int63n(d + 1)
			world.Add(tp, d)
			label.Add(tp, c)
		}
		db.Put(uadb.New[int64](k, label, world))
	}
	return db
}

// randomRAQuery builds a random RA⁺ kdb query and the equivalent SQL text.
// Every node renames its outputs to globally fresh column names so
// self-joins never create ambiguous references; the kdb and SQL forms rename
// identically, keeping them comparable tuple-for-tuple.
func randomRAQuery(rng *rand.Rand, depth int) (kdb.Query, string) {
	ctr := 0
	q, sqlText, _ := genQuery(rng, depth, &ctr)
	return q, sqlText
}

func fresh(ctr *int) string {
	*ctr++
	return fmt.Sprintf("k%d", *ctr)
}

// genQuery returns the kdb query, the SQL text, and the output column names.
func genQuery(rng *rand.Rand, depth int, ctr *int) (kdb.Query, string, []string) {
	if depth <= 0 {
		n1, n2 := fresh(ctr), fresh(ctr)
		if rng.Intn(2) == 0 {
			q := kdb.RenameQ{Input: kdb.Table{Name: "r"}, Attrs: []string{n1, n2}}
			return q, fmt.Sprintf("SELECT a AS %s, b AS %s FROM r", n1, n2), []string{n1, n2}
		}
		q := kdb.RenameQ{Input: kdb.Table{Name: "s"}, Attrs: []string{n1, n2}}
		return q, fmt.Sprintf("SELECT c AS %s, d AS %s FROM s", n1, n2), []string{n1, n2}
	}
	switch rng.Intn(4) {
	case 0:
		in, sqlText, names := genQuery(rng, depth-1, ctr)
		attr := names[rng.Intn(len(names))]
		v := rng.Int63n(3)
		q := kdb.SelectQ{Input: in, Pred: kdb.AttrConst{Attr: attr, Op: kdb.OpLe, Const: iv(v)}}
		return q, fmt.Sprintf("SELECT * FROM (%s) t%s WHERE %s <= %d", sqlText, fresh(ctr), attr, v), names
	case 1:
		in, sqlText, names := genQuery(rng, depth-1, ctr)
		attr := names[rng.Intn(len(names))]
		out := fresh(ctr)
		q := kdb.RenameQ{Input: kdb.ProjectQ{Input: in, Attrs: []string{attr}}, Attrs: []string{out}}
		return q, fmt.Sprintf("SELECT %s AS %s FROM (%s) t%s", attr, out, sqlText, fresh(ctr)), []string{out}
	case 2:
		l, lsql, lNames := genQuery(rng, depth-1, ctr)
		r, rsql, rNames := genQuery(rng, depth-1, ctr)
		lAttr := lNames[rng.Intn(len(lNames))]
		rAttr := rNames[rng.Intn(len(rNames))]
		q := kdb.JoinQ{Left: l, Right: r,
			Pred: kdb.AttrAttr{Left: lAttr, Right: rAttr, PosLeft: -1, PosRight: -1, Op: kdb.OpEq}}
		names := append(append([]string{}, lNames...), rNames...)
		return q, fmt.Sprintf("SELECT * FROM (%s) t%s, (%s) t%s WHERE %s = %s",
			lsql, fresh(ctr), rsql, fresh(ctr), lAttr, rAttr), names
	default:
		l, lsql, lNames := genQuery(rng, depth-1, ctr)
		r, rsql, rNames := genQuery(rng, depth-1, ctr)
		lAttr := lNames[rng.Intn(len(lNames))]
		rAttr := rNames[rng.Intn(len(rNames))]
		out := fresh(ctr)
		q := kdb.RenameQ{
			Input: kdb.UnionQ{
				Left:  kdb.ProjectQ{Input: l, Attrs: []string{lAttr}},
				Right: kdb.ProjectQ{Input: r, Attrs: []string{rAttr}},
			},
			Attrs: []string{out},
		}
		return q, fmt.Sprintf("SELECT %s AS %s FROM (%s) t%s UNION ALL SELECT %s AS %s FROM (%s) t%s",
			lAttr, out, lsql, fresh(ctr), rAttr, out, rsql, fresh(ctr)), []string{out}
	}
}

// TestRewritingCorrectness is Theorem 7: evaluating Q directly over the
// N^UA database (K-relation semantics on annotation pairs) coincides with
// Enc → rewritten SQL over the relational encoding → Dec.
func TestRewritingCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	trials := 0
	for trials < 60 {
		db := randomUADB(rng)
		q, sqlText := randomRAQuery(rng, rng.Intn(3)+1)

		direct, err := uadb.Eval(q, db)
		if err != nil {
			t.Fatal(err)
		}

		front := NewFrontend(EncodeUADatabase(db))
		res, err := runFront(front, sqlText)
		if err != nil {
			t.Fatalf("query %q: %v", sqlText, err)
		}
		viaSQL, err := UAFromTable(res)
		if err != nil {
			t.Fatal(err)
		}
		// Compare as bags of (tuple, pair).
		if !relEqual(direct, viaSQL) {
			t.Fatalf("Theorem 7 violated for %q:\ndirect:\n%s\nvia SQL:\n%s",
				sqlText, direct.String(), viaSQL.String())
		}
		trials++
	}
}

func relEqual(a, b *uadb.Relation[int64]) bool {
	if a.Len() != b.Len() {
		return false
	}
	ok := true
	a.ForEach(func(tp types.Tuple, p semiring.Pair[int64]) {
		q := b.Get(tp)
		if p != q {
			ok = false
		}
	})
	return ok
}

func TestRewriteJoinKeepsPositionsAndC(t *testing.T) {
	db := randomUADB(rand.New(rand.NewSource(7)))
	front := NewFrontend(EncodeUADatabase(db))
	res, err := runFront(front, "SELECT r.a, r.b, s.c, s.d FROM r, s WHERE r.b = s.c")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Schema.Attrs[len(res.Schema.Attrs)-1]; got != uadb.UAttr {
		t.Errorf("last column = %s, want %s", got, uadb.UAttr)
	}
	if res.Schema.Arity() != 5 {
		t.Errorf("arity = %d, want 4 user + C", res.Schema.Arity())
	}
	// C of a joined row is the min of the inputs' markers: always 0/1.
	for _, row := range res.Rows {
		c := row[4].Int()
		if c != 0 && c != 1 {
			t.Errorf("C = %d", c)
		}
	}
}

func TestRewriteRejectsNonRAPlus(t *testing.T) {
	db := randomUADB(rand.New(rand.NewSource(8)))
	front := NewFrontend(EncodeUADatabase(db))
	if _, err := runFront(front, "SELECT DISTINCT a FROM r"); err == nil {
		t.Error("DISTINCT must be rejected")
	}
	if _, err := runFront(front, "SELECT count(*) FROM r"); err == nil {
		t.Error("aggregation must be rejected")
	}
}

func TestRewritePassesSortLimit(t *testing.T) {
	db := randomUADB(rand.New(rand.NewSource(9)))
	front := NewFrontend(EncodeUADatabase(db))
	res, err := runFront(front, "SELECT a, b FROM r ORDER BY a DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() > 2 {
		t.Error("limit")
	}
	if res.Schema.Attrs[2] != uadb.UAttr {
		t.Error("C retained through sort/limit")
	}
}

// --- Labeling-scheme frontends (Section 9.2) ---

func TestEncodeTITable(t *testing.T) {
	raw := engine.NewTable(types.NewSchema("r", "a", "p"))
	raw.AppendVals(iv(1), types.NewFloat(1.0))
	raw.AppendVals(iv(2), types.NewFloat(0.7))
	raw.AppendVals(iv(3), types.NewFloat(0.3))
	enc, err := EncodeTITable(raw, "p")
	if err != nil {
		t.Fatal(err)
	}
	if enc.Schema.Arity() != 2 || enc.Schema.Attrs[1] != uadb.UAttr {
		t.Fatalf("schema = %s", enc.Schema)
	}
	want := map[int64]int64{1: 1, 2: 0} // id -> C; id 3 dropped (P < 0.5)
	if enc.NumRows() != 2 {
		t.Fatalf("rows = %d", enc.NumRows())
	}
	for _, row := range enc.Rows {
		if want[row[0].Int()] != row[1].Int() {
			t.Errorf("row %v", row)
		}
	}
	if _, err := EncodeTITable(raw, "zzz"); err == nil {
		t.Error("missing prob attr")
	}
}

func TestEncodeXTable(t *testing.T) {
	raw := engine.NewTable(types.NewSchema("r", "xid", "aid", "v", "p"))
	// x-tuple 1: single certain alternative.
	raw.AppendVals(iv(1), iv(1), sv("a"), types.NewFloat(1.0))
	// x-tuple 2: two alternatives, best 0.6.
	raw.AppendVals(iv(2), iv(1), sv("b"), types.NewFloat(0.6))
	raw.AppendVals(iv(2), iv(2), sv("c"), types.NewFloat(0.4))
	// x-tuple 3: low-probability alternative, absence (0.9) wins.
	raw.AppendVals(iv(3), iv(1), sv("d"), types.NewFloat(0.1))
	enc, err := EncodeXTable(raw, "xid", "aid", "p")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, row := range enc.Rows {
		got[row[0].Str()] = row[1].Int()
	}
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	if got["a"] != 1 {
		t.Error("certain alternative")
	}
	if c, ok := got["b"]; !ok || c != 0 {
		t.Error("best guess alternative b uncertain")
	}
	if _, ok := got["d"]; ok {
		t.Error("x-tuple 3 should be skipped")
	}
}

func TestEncodeCTableTable(t *testing.T) {
	raw := engine.NewTable(types.NewSchema("r", "a", "b", "v1", "v2", "lc"))
	// Ground, tautological condition -> certain.
	raw.AppendVals(iv(1), iv(10), types.Null(), types.Null(), sv("X = 1 OR X <> 1"))
	// Ground, contingent condition -> uncertain.
	raw.AppendVals(iv(2), iv(20), types.Null(), types.Null(), sv("X = 1"))
	// Variable row -> dropped from the best-guess encoding.
	raw.AppendVals(iv(3), types.Null(), types.Null(), sv("X"), sv(""))
	// Ground, empty condition -> certain.
	raw.AppendVals(iv(4), iv(40), types.Null(), types.Null(), sv(""))
	enc, err := EncodeCTableTable(raw, []string{"v1", "v2"}, "lc")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]int64{}
	for _, row := range enc.Rows {
		got[row[0].Int()] = row[2].Int()
	}
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	if got[1] != 1 || got[2] != 0 || got[4] != 1 {
		t.Errorf("labels = %v", got)
	}
	if _, err := EncodeCTableTable(raw, []string{"nope"}, "lc"); err == nil {
		t.Error("missing var attr")
	}
	bad := engine.NewTable(types.NewSchema("r", "a", "v1", "lc"))
	bad.AppendVals(iv(1), types.Null(), sv("X ="))
	if _, err := EncodeCTableTable(bad, []string{"v1"}, "lc"); err == nil {
		t.Error("unparsable condition should error")
	}
}

func TestModelAnnotationEndToEnd(t *testing.T) {
	front := NewFrontend(engine.NewCatalog())
	raw := engine.NewTable(types.NewSchema("sensors", "id", "temp", "p"))
	raw.AppendVals(iv(1), types.NewFloat(20.5), types.NewFloat(1.0))
	raw.AppendVals(iv(2), types.NewFloat(21.0), types.NewFloat(0.8))
	raw.AppendVals(iv(3), types.NewFloat(19.0), types.NewFloat(0.2))
	front.Raw.Put(raw)
	res, err := runFront(front, "SELECT id, temp FROM sensors IS TI WITH PROBABILITY (p) WHERE temp > 20")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.NumRows())
	}
	certain := map[int64]int64{}
	for _, row := range res.Rows {
		certain[row[0].Int()] = row[2].Int()
	}
	if certain[1] != 1 || certain[2] != 0 {
		t.Errorf("certainty: %v", certain)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	raw := engine.NewTable(types.NewSchema("r", "a"))
	raw.AppendVals(iv(1))
	enc := EncodeDeterministic(raw)
	if enc.Rows[0][1].Int() != 1 {
		t.Error("deterministic rows are certain")
	}
}

func TestBridgeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		db := randomUADB(rng)
		for name, rel := range db.Relations {
			tbl := TableFromUA(rel)
			back, err := UAFromTable(tbl)
			if err != nil {
				t.Fatal(err)
			}
			if !relEqual(rel, back) {
				t.Fatalf("bridge round trip failed for %s", name)
			}
		}
	}
}

func TestDetCatalog(t *testing.T) {
	db := geoUADB()
	det := DetCatalog(db)
	addr := det.Get("addr")
	if addr == nil || addr.NumRows() != 4 {
		t.Fatalf("BGW addr should have 4 rows, got %v", addr)
	}
	if strings.Contains(strings.Join(addr.Schema.Attrs, ","), uadb.UAttr) {
		t.Error("det catalog must not contain the certainty column")
	}
}

func TestFrontendErrors(t *testing.T) {
	front := NewFrontend(engine.NewCatalog())
	if _, err := runFront(front, "SELECT * FROM missing"); err == nil {
		t.Error("unknown table")
	}
	if _, err := runFront(front, "SELECT * FROM missing IS TI WITH PROBABILITY (p)"); err == nil {
		t.Error("unknown raw table")
	}
	if _, err := runFront(front, "not sql"); err == nil {
		t.Error("parse error")
	}
}

// TestRewrittenOverheadIsBounded is a smoke check of the performance claim:
// the rewritten query does the same joins plus constant-width bookkeeping,
// so the result has exactly one extra column and the same number of rows as
// the deterministic query over the BGW.
func TestRewrittenMatchesDeterministicShape(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 30; i++ {
		db := randomUADB(rng)
		_, sqlText := randomRAQuery(rng, rng.Intn(3)+1)

		front := NewFrontend(EncodeUADatabase(db))
		uaRes, err := runFront(front, sqlText)
		if err != nil {
			t.Fatal(err)
		}
		detRes, err := runDet(DetCatalog(db), sqlText)
		if err != nil {
			t.Fatal(err)
		}
		if uaRes.NumRows() != detRes.NumRows() {
			t.Fatalf("row count differs: UA %d vs Det %d for %q",
				uaRes.NumRows(), detRes.NumRows(), sqlText)
		}
		if uaRes.Schema.Arity() != detRes.Schema.Arity()+1 {
			t.Fatalf("arity: UA %d vs Det %d", uaRes.Schema.Arity(), detRes.Schema.Arity())
		}
	}
}

func TestExplain(t *testing.T) {
	db := randomUADB(rand.New(rand.NewSource(12)))
	front := NewFrontend(EncodeUADatabase(db))
	plan, err := front.Explain("SELECT a FROM r WHERE a > 0")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Project", "Filter", "Scan", uadb.UAttr} {
		if !strings.Contains(plan, frag) {
			t.Errorf("explain output missing %q: %s", frag, plan)
		}
	}
	if _, err := front.Explain("not sql"); err == nil {
		t.Error("parse error expected")
	}
}
