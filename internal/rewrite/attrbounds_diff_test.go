package rewrite

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/types"
)

// The differential AU-DB harness. Every trial builds a random probabilistic
// x-relation and runs a fixed query suite three ways — (1) attribute-bounds
// mode over the spine encoding, across a DOP × memory-budget × fusion
// matrix, (2) deterministically in every possible world via models.WorldsXDB,
// and (3) through the tuple-level UA rewrite — then checks the soundness
// invariants that make the [lo, bg, hi] answers meaningful:
//
//   - containment: each world's answer fits inside the AU bounds (every
//     world row is covered by a distinct AU row whose ranges contain it;
//     every aggregate value lands in [lo, hi]),
//   - certainty: rows and groups annotated __ec = 1 exist in every world,
//   - best guess: the bg spine reproduces the designated best-guess world
//     and, for RA+ plans, the tuple-level UA answer,
//   - stability: all engine configurations return the same answer.

// attrTrialQuery is one query of the differential suite. nKeys < 0 marks an
// RA+ (non-aggregate) plan, which additionally gets the tuple-level UA leg;
// otherwise nKeys GROUP BY keys precede nAggs aggregate columns.
type attrTrialQuery struct {
	sql   string
	nKeys int
	nAggs int
}

var attrTrialQueries = []attrTrialQuery{
	{sql: "SELECT g, a + b AS s FROM t WHERE a > 8", nKeys: -1},
	{sql: "SELECT g, b FROM t WHERE a > 12 OR b < 6", nKeys: -1},
	{sql: "SELECT t.g, t.a, d.v FROM t, d WHERE t.g = d.g AND t.b < d.v", nKeys: -1},
	{sql: "SELECT g, a * b - a AS m, least(a, b) AS l, abs(a - b) AS ab FROM t", nKeys: -1},
	{sql: "SELECT g, COUNT(*) AS n, SUM(a) AS s, MIN(a) AS mn, MAX(b) AS mx, AVG(a) AS av FROM t WHERE b >= 4 GROUP BY g", nKeys: 1, nAggs: 5},
	{sql: "SELECT COUNT(*) AS n, SUM(a + b) AS s FROM t WHERE a >= 6", nKeys: 0, nAggs: 2},
}

// randAttrXRel generates a probabilistic x-relation t(g, a, b): 3-4 x-tuples,
// certain group attribute, 1-2 alternatives each with quarter-unit
// probabilities (exact in binary, so the ≥ 1−total designation rule never
// hinges on float crumbs). Total probability < 1 leaves an absent choice, so
// worlds cover value and existence uncertainty alike; at most 3^4 = 81 worlds.
func randAttrXRel(rng *rand.Rand) *models.XRelation {
	rel := models.NewXRelation(types.NewSchema("t", "g", "a", "b"))
	rel.Probabilistic = true
	n := 3 + rng.Intn(2)
	for i := 0; i < n; i++ {
		g := sv([]string{"p", "q"}[rng.Intn(2)])
		nAlt := 1 + rng.Intn(2)
		units := 2 + rng.Intn(3) // total prob 0.5, 0.75, or 1.0
		var x models.XTuple
		for j := 0; j < nAlt; j++ {
			u := units
			if j < nAlt-1 {
				u = rng.Intn(units + 1)
				units -= u
			}
			x.Alts = append(x.Alts, models.Alternative{
				Data: types.Tuple{g, iv(int64(rng.Intn(16))), iv(int64(rng.Intn(16)))},
				Prob: float64(u) / 4,
			})
		}
		rel.Add(x)
	}
	return rel
}

// attrDetTable is the deterministic join partner d(g, v).
func attrDetTable() *engine.Table {
	d := engine.NewTable(types.NewSchema("d", "g", "v"))
	d.AppendVals(sv("p"), iv(7))
	d.AppendVals(sv("q"), iv(11))
	d.AppendVals(sv("q"), iv(3))
	return d
}

// tableFromKRel expands an N-annotated relation into a plain bag table,
// one row per unit of multiplicity.
func tableFromKRel(rel *kdb.Relation[int64], name string, attrs []string) *engine.Table {
	tbl := engine.NewTable(types.NewSchema(name, attrs...))
	rel.ForEach(func(tp types.Tuple, ann int64) {
		for c := int64(0); c < ann; c++ {
			row := make(types.Tuple, len(tp))
			copy(row, tp)
			tbl.Append(row)
		}
	})
	return tbl
}

// flatXTable lays the x-relation out as the flat (xid, alt, p, ...) table the
// tuple-level IS X annotation consumes, so the UA leg runs through the same
// EncodeXTable designation rule users hit.
func flatXTable(rel *models.XRelation) *engine.Table {
	tbl := engine.NewTable(types.NewSchema("t", "xid", "alt", "p", "g", "a", "b"))
	for xi, x := range rel.XTuples {
		for ai, alt := range x.Alts {
			row := types.Tuple{iv(int64(xi)), iv(int64(ai)), types.NewFloat(alt.Prob)}
			row = append(row, alt.Data...)
			tbl.Append(row)
		}
	}
	return tbl
}

// attrRow is one decoded AU result row: per logical attribute the lower,
// best-guess, and upper spines, plus the two existence annotations.
type attrRow struct {
	lo, bg, hi types.Tuple
	ec, ebg    bool
}

func parseAttrRows(t *testing.T, tbl *engine.Table) []attrRow {
	t.Helper()
	na := len(tbl.Schema.Attrs)
	if na < 2 || (na-2)%3 != 0 ||
		tbl.Schema.Attrs[na-2] != AttrECName || tbl.Schema.Attrs[na-1] != AttrEBGName {
		t.Fatalf("not an attribute-bounds schema: %v", tbl.Schema.Attrs)
	}
	k := (na - 2) / 3
	out := make([]attrRow, len(tbl.Rows))
	for i, row := range tbl.Rows {
		r := attrRow{ec: row[3*k].Int() == 1, ebg: row[3*k+1].Int() == 1}
		for j := 0; j < k; j++ {
			r.lo = append(r.lo, row[3*j])
			r.bg = append(r.bg, row[3*j+1])
			r.hi = append(r.hi, row[3*j+2])
		}
		out[i] = r
	}
	return out
}

// rangeContains reports whether every attribute of the world row lies inside
// the AU row's [lo, hi] ranges. Value.Compare orders NULL below everything,
// so a NULL world value is contained only by a NULL-to-NULL range.
func rangeContains(au attrRow, row types.Tuple) bool {
	for j, v := range row {
		if au.lo[j].Compare(v) > 0 || v.Compare(au.hi[j]) > 0 {
			return false
		}
	}
	return true
}

// maxMatching returns the size of a maximum bipartite matching for adjacency
// adj (left node → candidate right nodes), by augmenting paths. Result sizes
// here are tens of rows, so the O(V·E) bound is immaterial.
func maxMatching(adj [][]int, nRight int) int {
	matchR := make([]int, nRight)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(l int, seen []bool) bool
	try = func(l int, seen []bool) bool {
		for _, r := range adj[l] {
			if seen[r] {
				continue
			}
			seen[r] = true
			if matchR[r] == -1 || try(matchR[r], seen) {
				matchR[r] = l
				return true
			}
		}
		return false
	}
	size := 0
	for l := range adj {
		if try(l, make([]bool, nRight)) {
			size++
		}
	}
	return size
}

const attrEps = 1e-6

// attrValEq compares a best-guess spine value with the best-guess world's
// answer: exact for NULLs, strings, and ints; a small absolute epsilon for
// floats, whose parallel aggregation re-associates additions.
func attrValEq(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	if a.IsNumeric() && b.IsNumeric() {
		return math.Abs(a.Float()-b.Float()) <= attrEps
	}
	return a.Compare(b) == 0
}

// attrValIn checks one world aggregate value against its [lo, hi] bound. A
// NULL world value marks an empty aggregate in that world — emptiness itself
// is pinned by the COUNT bounds, so the value check passes vacuously.
func attrValIn(v, lo, hi types.Value) bool {
	if v.IsNull() {
		return true
	}
	if v.IsNumeric() && lo.IsNumeric() && hi.IsNumeric() {
		return v.Float() >= lo.Float()-attrEps && v.Float() <= hi.Float()+attrEps
	}
	return lo.Compare(v) <= 0 && v.Compare(hi) <= 0
}

// attrRowKey renders a result row for multiset comparison, rounding floats
// to 9 significant digits so DOP-dependent re-association doesn't register.
func attrRowKey(row []types.Value) string {
	var b strings.Builder
	for _, v := range row {
		switch {
		case v.IsNull():
			b.WriteString("|~null")
		case v.Kind() == types.KindFloat:
			fmt.Fprintf(&b, "|f%.9g", v.Float())
		default:
			b.WriteString("|")
			b.Write(v.AppendKey(nil))
		}
	}
	return b.String()
}

func multisetOf[R ~[]types.Value](rows []R) map[string]int {
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		out[attrRowKey(r)]++
	}
	return out
}

func equalCounts(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// bgProjection extracts the best-guess spine of the AU rows whose best-guess
// annotation is set — the rows the designated world actually contains.
func bgProjection(rows []attrRow) []types.Tuple {
	var out []types.Tuple
	for _, r := range rows {
		if r.ebg {
			out = append(out, r.bg)
		}
	}
	return out
}

// checkRAContainment verifies an RA+ result: each world's rows embed into
// distinct covering AU rows, every ec=1 AU row finds a distinct witness in
// each world, and the ebg rows' bg spines reproduce the best-guess world.
func checkRAContainment(t *testing.T, label string, auRows []attrRow, worldRes []*engine.Table, bgRes *engine.Table) {
	t.Helper()
	var ecIdx []int
	for i, r := range auRows {
		if r.ec {
			ecIdx = append(ecIdx, i)
		}
	}
	for wi, wt := range worldRes {
		adj := make([][]int, len(wt.Rows))
		for i, wrow := range wt.Rows {
			for a, au := range auRows {
				if rangeContains(au, wrow) {
					adj[i] = append(adj[i], a)
				}
			}
		}
		if got := maxMatching(adj, len(auRows)); got != len(wt.Rows) {
			t.Fatalf("%s world %d: only %d of %d world rows covered by AU rows\nworld: %v", label, wi, got, len(wt.Rows), wt.Rows)
		}
		ecAdj := make([][]int, len(ecIdx))
		for a, ai := range ecIdx {
			for i, wrow := range wt.Rows {
				if rangeContains(auRows[ai], wrow) {
					ecAdj[a] = append(ecAdj[a], i)
				}
			}
		}
		if got := maxMatching(ecAdj, len(wt.Rows)); got != len(ecIdx) {
			t.Fatalf("%s world %d: only %d of %d certain (ec=1) AU rows witnessed\nworld: %v", label, wi, got, len(ecIdx), wt.Rows)
		}
	}
	if !equalCounts(multisetOf(bgProjection(auRows)), multisetOf(bgRes.Rows)) {
		t.Fatalf("%s: bg spine (ebg=1) != best-guess world answer\nbg spine: %v\nbest-guess world: %v", label, bgProjection(auRows), bgRes.Rows)
	}
}

// checkAggContainment verifies an aggregate result: every world group's
// values land inside the AU bounds for that key, ec=1 groups exist in every
// world, and ebg=1 groups' bg arms equal the best-guess world's answer.
func checkAggContainment(t *testing.T, label string, q attrTrialQuery, auRows []attrRow, worldRes []*engine.Table, bgRes *engine.Table) {
	t.Helper()
	byKey := make(map[string]attrRow, len(auRows))
	for _, r := range auRows {
		byKey[attrRowKey(r.bg[:q.nKeys])] = r
	}
	for wi, wt := range worldRes {
		seen := make(map[string]bool)
		for _, wrow := range wt.Rows {
			key := attrRowKey(wrow[:q.nKeys])
			seen[key] = true
			au, ok := byKey[key]
			if !ok {
				t.Fatalf("%s world %d: group %v missing from AU result", label, wi, wrow[:q.nKeys])
			}
			for j := 0; j < q.nAggs; j++ {
				v := wrow[q.nKeys+j]
				if !attrValIn(v, au.lo[q.nKeys+j], au.hi[q.nKeys+j]) {
					t.Fatalf("%s world %d group %v agg %d: %v outside [%v, %v]",
						label, wi, wrow[:q.nKeys], j, v, au.lo[q.nKeys+j], au.hi[q.nKeys+j])
				}
			}
		}
		for key, au := range byKey {
			if au.ec && !seen[key] {
				t.Fatalf("%s world %d: certain (ec=1) group %v absent", label, wi, au.bg[:q.nKeys])
			}
		}
	}
	bgSeen := make(map[string]bool)
	for _, brow := range bgRes.Rows {
		key := attrRowKey(brow[:q.nKeys])
		bgSeen[key] = true
		au, ok := byKey[key]
		if !ok || !au.ebg {
			t.Fatalf("%s: best-guess world group %v not marked ebg=1 in AU result", label, brow[:q.nKeys])
		}
		for j := 0; j < q.nAggs; j++ {
			if !attrValEq(brow[q.nKeys+j], au.bg[q.nKeys+j]) {
				t.Fatalf("%s group %v agg %d: bg arm %v != best-guess world %v",
					label, brow[:q.nKeys], j, au.bg[q.nKeys+j], brow[q.nKeys+j])
			}
		}
	}
	for key, au := range byKey {
		if au.ebg && !bgSeen[key] {
			t.Fatalf("%s: ebg=1 group %v absent from best-guess world answer", label, au.bg[:q.nKeys])
		}
	}
}

// attrBoundsTrial runs one random instance through the whole suite under the
// given engine configurations.
func attrBoundsTrial(t *testing.T, rng *rand.Rand, cfgs []QueryOpts, spill string) {
	t.Helper()
	rel := randAttrXRel(rng)
	at, err := EncodeAttrX(rel)
	if err != nil {
		t.Fatal(err)
	}
	wdb, err := models.WorldsXDB(rel)
	if err != nil {
		t.Fatal(err)
	}
	attrs := []string{"g", "a", "b"}
	worldCats := make([]*engine.Catalog, len(wdb.Worlds))
	for i, w := range wdb.Worlds {
		cat := engine.NewCatalog()
		cat.PutAs("t", tableFromKRel(w.Get("t"), "t", attrs))
		cat.PutAs("d", attrDetTable())
		worldCats[i] = cat
	}
	bgCat := engine.NewCatalog()
	bgCat.PutAs("t", tableFromKRel(models.BestGuessXDB(rel), "t", attrs))
	bgCat.PutAs("d", attrDetTable())

	front := NewFrontend(engine.NewCatalog())
	front.PutAttrTable("t", at)
	front.PutAttrTable("d", EncodeAttrDeterministic(attrDetTable()))

	uaFront := NewFrontend(engine.NewCatalog())
	uaEnc, err := EncodeXTable(flatXTable(rel), "xid", "alt", "p")
	if err != nil {
		t.Fatal(err)
	}
	uaFront.Enc.PutAs("t", uaEnc)
	uaFront.Enc.PutAs("d", EncodeDeterministic(attrDetTable()))

	for _, q := range attrTrialQueries {
		worldRes := make([]*engine.Table, len(worldCats))
		for i, cat := range worldCats {
			wr, err := runDet(cat, q.sql)
			if err != nil {
				t.Fatalf("%s world %d: %v", q.sql, i, err)
			}
			worldRes[i] = wr
		}
		bgRes, err := runDet(bgCat, q.sql)
		if err != nil {
			t.Fatalf("%s best-guess world: %v", q.sql, err)
		}

		var base map[string]int
		var baseRows []attrRow
		for ci, cfg := range cfgs {
			cfg.SpillDir = spill
			res, err := front.Query(context.Background(), q.sql, cfg)
			if err != nil {
				t.Fatalf("%s [cfg %d %+v]: %v", q.sql, ci, cfg, err)
			}
			auTbl := engine.ResultTable(res)
			label := fmt.Sprintf("%s [cfg %d dop=%d fuse=%v budget=%d]", q.sql, ci, cfg.DOP, cfg.Fuse, cfg.MemBudget)
			ms := multisetOf(auTbl.Rows)
			if ci == 0 {
				base, baseRows = ms, parseAttrRows(t, auTbl)
			} else if !equalCounts(base, ms) {
				t.Fatalf("%s: result differs from cfg 0\ncfg0: %v\nthis: %v", label, base, ms)
			}
			auRows := parseAttrRows(t, auTbl)
			if q.nKeys < 0 {
				checkRAContainment(t, label, auRows, worldRes, bgRes)
			} else {
				checkAggContainment(t, label, q, auRows, worldRes, bgRes)
			}
		}

		if q.nKeys < 0 {
			uaTbl, err := runFront(uaFront, q.sql)
			if err != nil {
				t.Fatalf("%s tuple-level leg: %v", q.sql, err)
			}
			uaUser := make([]types.Tuple, len(uaTbl.Rows))
			for i, r := range uaTbl.Rows {
				uaUser[i] = r[:len(r)-1] // drop the trailing certainty column
			}
			if !equalCounts(multisetOf(bgProjection(baseRows)), multisetOf(uaUser)) {
				t.Fatalf("%s: AU bg spine != tuple-level UA answer\nAU bg: %v\nUA: %v", q.sql, bgProjection(baseRows), uaUser)
			}
		}
	}
}

// TestAttrBoundsDifferential is the randomized soundness harness: AU bounds
// must contain every possible world's answer and reproduce the best-guess
// world, identically across serial, parallel, fused, and spill-budgeted
// configurations. CI runs this under -race.
func TestAttrBoundsDifferential(t *testing.T) {
	cfgs := []QueryOpts{
		{AttrBounds: true, DOP: 1},
		{AttrBounds: true, DOP: 1, Fuse: true},
		{AttrBounds: true, DOP: 2, Fuse: true, MemBudget: 32 << 20},
		{AttrBounds: true, DOP: runtime.NumCPU(), MemBudget: 32 << 20},
	}
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for tr := 0; tr < trials; tr++ {
		t.Run(fmt.Sprintf("trial%02d", tr), func(t *testing.T) {
			attrBoundsTrial(t, rand.New(rand.NewSource(int64(100+tr))), cfgs, t.TempDir())
		})
	}
}

// FuzzAttrBounds feeds random seeds through one differential trial each,
// hunting instances where the AU bounds fail to contain a possible world.
func FuzzAttrBounds(f *testing.F) {
	for _, s := range []int64{1, 7, 42} {
		f.Add(s)
	}
	cfgs := []QueryOpts{
		{AttrBounds: true, DOP: 1},
		{AttrBounds: true, DOP: 2, Fuse: true, MemBudget: 32 << 20},
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		attrBoundsTrial(t, rand.New(rand.NewSource(seed)), cfgs, t.TempDir())
	})
}
