package rewrite

import (
	"container/list"
	"strings"
	"sync"
)

// DefaultPlanCacheSize is the plan-cache capacity EnablePlanCache picks for
// n <= 0.
const DefaultPlanCacheSize = 256

// planCache is a bounded LRU of rewritten logical plans keyed on normalized
// SQL. Plans are stored after the UA rewrite and before physical
// optimization/lowering, the last point at which they are shared-safe: the
// physical optimizer documents that it never mutates its input, so any
// number of concurrent executions may lower one cached plan.
type planCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	lru   *list.List // front = most recent; values are *planEntry

	hits   int64
	misses int64
}

type planEntry struct {
	key  string
	plan algebraNode
}

func newPlanCache(n int) *planCache {
	if n <= 0 {
		n = DefaultPlanCacheSize
	}
	return &planCache{cap: n, items: make(map[string]*list.Element), lru: list.New()}
}

func (c *planCache) get(key string) (algebraNode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry).plan, true
}

func (c *planCache) put(key string, plan algebraNode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planEntry).plan = plan
		c.lru.MoveToFront(el)
		return
	}
	c.items[key] = c.lru.PushFront(&planEntry{key: key, plan: plan})
	for c.lru.Len() > c.cap {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.items, el.Value.(*planEntry).key)
	}
}

func (c *planCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// NormalizeSQL is the plan-cache key function: it upper-cases and
// whitespace-collapses everything outside quoted literals, strips line
// comments and trailing semicolons, so the same statement written with
// different spacing, line breaks, comments, or keyword case shares one
// cache slot. Quoted string literals ('...' and "...", with doubled-quote
// and backslash escapes) pass through byte-for-byte — value semantics are
// case-sensitive even though identifier resolution is not. The escape and
// comment rules must mirror the lexer's exactly: if the key scanner closes
// a literal the lexer stays inside (or reads a comment the lexer drops),
// bytes that distinguish two statements land in the case-folded region and
// the statements collide on one cache slot — a wrong-result bug, not a
// missed optimization. The function is deliberately syntax-blind: it never
// fails, and two statements that normalize equal would parse and plan
// identically.
func NormalizeSQL(q string) string {
	var sb strings.Builder
	sb.Grow(len(q))
	pendingSpace := false
	i := 0
	for i < len(q) {
		c := q[i]
		switch {
		case c == '\'' || c == '"':
			if pendingSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			quote := c
			sb.WriteByte(c)
			i++
			for i < len(q) {
				// A backslash escaping a quote or a backslash stays inside
				// the literal ('...' only — quoted identifiers have no
				// backslash escapes in the lexer).
				if quote == '\'' && q[i] == '\\' && i+1 < len(q) &&
					(q[i+1] == '\'' || q[i+1] == '\\') {
					sb.WriteByte(q[i])
					sb.WriteByte(q[i+1])
					i += 2
					continue
				}
				sb.WriteByte(q[i])
				if q[i] == quote {
					// A doubled quote is an escaped quote: stay inside.
					if i+1 < len(q) && q[i+1] == quote {
						sb.WriteByte(q[i+1])
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
		case c == '-' && i+1 < len(q) && q[i+1] == '-':
			// Line comment: the lexer drops it entirely, so the key must
			// too — an apostrophe inside a comment would otherwise flip
			// the literal tracking out of sync with the lexer.
			for i < len(q) && q[i] != '\n' {
				i++
			}
			pendingSpace = true
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pendingSpace = true
			i++
		default:
			if pendingSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			pendingSpace = false
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			sb.WriteByte(c)
			i++
		}
	}
	return strings.TrimRight(sb.String(), "; ")
}
