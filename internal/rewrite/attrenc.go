package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/types"
)

// AttrTable is one relation in the AU-DB spine encoding: the 3k+2-column
// table plus the static per-logical-column mask saying which attributes may
// range-vary across possible worlds. The rewriter uses the mask to collapse
// bound propagation over provably world-invariant expressions.
type AttrTable struct {
	Table *engine.Table
	Mask  []bool
}

// tripled appends [v, v, v] — the spine encoding of a certain value.
func tripled(row []types.Value, v types.Value) []types.Value {
	return append(row, v, v, v)
}

// EncodeAttrDeterministic encodes a plain table with collapsed ranges:
// every attribute certain, every row in every world.
func EncodeAttrDeterministic(t *engine.Table) *AttrTable {
	out := engine.NewTable(attrSchema(t.Schema))
	one := types.NewInt(1)
	for _, row := range t.Rows {
		nr := make([]types.Value, 0, 3*len(row)+2)
		for _, v := range row {
			nr = tripled(nr, v)
		}
		out.Rows = append(out.Rows, append(nr, one, one))
	}
	return &AttrTable{Table: out, Mask: make([]bool, t.Schema.Arity())}
}

// EncodeAttrTI encodes a tuple-independent table: attribute values are
// certain, existence is not. Unlike the tuple-level EncodeTITable, rows
// below the best-guess threshold are kept as phantoms (__ebg = 0) — they
// exist in some world, so sound aggregate upper bounds must see them.
func EncodeAttrTI(t *engine.Table, probAttr string) (*AttrTable, error) {
	pIdx := t.Schema.IndexOf(probAttr)
	if pIdx < 0 {
		return nil, fmt.Errorf("rewrite: TI table %s has no probability attribute %q", t.Schema.Name, probAttr)
	}
	var attrs []string
	var keep []int
	for i, a := range t.Schema.Attrs {
		if i != pIdx {
			attrs = append(attrs, a)
			keep = append(keep, i)
		}
	}
	out := engine.NewTable(attrSchema(types.Schema{Name: t.Schema.Name, Attrs: attrs}))
	for _, row := range t.Rows {
		p := row[pIdx]
		if p.IsNull() || !p.IsNumeric() || p.Float() <= 0 {
			continue // impossible row: in no world
		}
		ec, ebg := int64(0), int64(0)
		if p.Float() >= 1 {
			ec = 1
		}
		if p.Float() >= 0.5 {
			ebg = 1
		}
		nr := make([]types.Value, 0, 3*len(keep)+2)
		for _, i := range keep {
			nr = tripled(nr, row[i])
		}
		out.Rows = append(out.Rows, append(nr, types.NewInt(ec), types.NewInt(ebg)))
	}
	return &AttrTable{Table: out, Mask: make([]bool, len(keep))}, nil
}

// EncodeAttrX encodes an x-relation: each x-tuple becomes one encoded row
// whose per-attribute range spans its alternatives and whose best-guess
// spine is the designated alternative under the same rule as the
// tuple-level scheme (highest probability unless absence is likelier;
// first alternative for incomplete x-relations). Attributes whose
// alternatives disagree must be non-NULL and numeric — a range cannot
// bound a string choice.
func EncodeAttrX(r *models.XRelation) (*AttrTable, error) {
	k := r.Schema.Arity()
	out := engine.NewTable(attrSchema(r.Schema))
	mask := make([]bool, k)
	for xi, x := range r.XTuples {
		if len(x.Alts) == 0 {
			continue
		}
		best := 0
		ec, ebg := int64(0), int64(1)
		if r.Probabilistic {
			for i, a := range x.Alts {
				if a.Prob > x.Alts[best].Prob {
					best = i
				}
			}
			if x.Alts[best].Prob < 1-x.TotalProb() {
				ebg = 0
			}
			if x.TotalProb() >= 1 {
				ec = 1
			}
		} else if !x.Optional {
			ec = 1
		}
		nr := make([]types.Value, 0, 3*k+2)
		for j := 0; j < k; j++ {
			lo, hi := x.Alts[0].Data[j], x.Alts[0].Data[j]
			differ := false
			for _, a := range x.Alts[1:] {
				v := a.Data[j]
				if c := v.Compare(lo); c != 0 {
					differ = true
					if c < 0 {
						lo = v
					}
				}
				if v.Compare(hi) > 0 {
					hi = v
				}
			}
			if differ {
				if lo.IsNull() || !lo.IsNumeric() || !hi.IsNumeric() {
					return nil, fmt.Errorf("rewrite: x-tuple %d attribute %s: range-uncertain values must be non-NULL numerics",
						xi, r.Schema.Attrs[j])
				}
				mask[j] = true
			}
			nr = append(nr, lo, x.Alts[best].Data[j], hi)
		}
		out.Rows = append(out.Rows, append(nr, types.NewInt(ec), types.NewInt(ebg)))
	}
	return &AttrTable{Table: out, Mask: mask}, nil
}

// EncodeAttrXTable is EncodeAttrX over the SQL surface's flat x-table
// shape (xid / altid / probability columns), the AU counterpart of
// EncodeXTable: rows sharing an xid form one x-tuple.
func EncodeAttrXTable(t *engine.Table, xidAttr, altAttr, probAttr string) (*AttrTable, error) {
	xIdx, aIdx, pIdx := t.Schema.IndexOf(xidAttr), t.Schema.IndexOf(altAttr), t.Schema.IndexOf(probAttr)
	if xIdx < 0 || aIdx < 0 || pIdx < 0 {
		return nil, fmt.Errorf("rewrite: x-table %s missing xid/altid/probability attribute", t.Schema.Name)
	}
	var attrs []string
	var keep []int
	for i, a := range t.Schema.Attrs {
		if i != xIdx && i != aIdx && i != pIdx {
			attrs = append(attrs, a)
			keep = append(keep, i)
		}
	}
	rel := models.NewXRelation(types.Schema{Name: t.Schema.Name, Attrs: attrs})
	rel.Probabilistic = true
	groups := make(map[string]*models.XTuple)
	var order []string
	for _, row := range t.Rows {
		key := types.Tuple{row[xIdx]}.Key()
		g, ok := groups[key]
		if !ok {
			g = &models.XTuple{}
			groups[key] = g
			order = append(order, key)
		}
		p := 0.0
		if row[pIdx].IsNumeric() {
			p = row[pIdx].Float()
		}
		data := make(types.Tuple, 0, len(keep))
		for _, i := range keep {
			data = append(data, row[i])
		}
		g.Alts = append(g.Alts, models.Alternative{Data: data, Prob: p})
	}
	sort.Strings(order)
	for _, key := range order {
		rel.Add(*groups[key])
	}
	return EncodeAttrX(rel)
}
