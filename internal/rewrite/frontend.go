package rewrite

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cond"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/uadb"
)

// QueryOpts is the one execution-option struct of the SQL surface: CLI
// flags, server session options, and test harnesses all reduce to it, and
// Frontend.Query is its only consumer — so every way of running a UA-SQL
// query shares one code path into the engine.
type QueryOpts struct {
	// DOP caps the physical engine's degree of parallelism: 0 means
	// automatic (GOMAXPROCS), 1 forces the serial engine. The UA rewrite
	// rides the same engine either way — the paper's lightweight claim —
	// so parallel speedups apply to UA queries and deterministic ones
	// alike.
	DOP int
	// MemBudget caps the query's pipeline-breaker working set in bytes
	// (sorts, aggregates, join builds spill to SpillDir under pressure);
	// <= 0 means unlimited. The knob applies to UA-rewritten and
	// deterministic queries identically — out-of-core execution is an
	// engine property, not a rewrite property.
	MemBudget int64
	// SpillDir is where spill runs are written; "" means the system temp
	// directory.
	SpillDir string
	// Fuse turns on fused pipeline compilation: maximal scan→filter→project
	// (→probe, →aggregate) chains lower to single-loop operators over the
	// typed vectors. Results are identical either way — the knob selects an
	// execution strategy, not semantics.
	Fuse bool
	// Gov, when set, is a pre-built memory governor — the query server's
	// admission grant — used instead of a per-query governor derived from
	// MemBudget. One-shot callers leave it nil.
	Gov *physical.MemGovernor
	// AttrBounds switches the frontend from the tuple-level UA rewrite to
	// the attribute-level AU-DB mode: plans are rewritten with
	// RewriteAttrBounds and executed against the spine-encoded catalog,
	// answering every attribute as a [lower, best-guess, upper] range.
	// Off, the tuple-level path is untouched.
	AttrBounds bool
}

// physical converts the options to the engine layer's form.
func (o QueryOpts) physical() physical.Options {
	return physical.Options{
		DOP: o.DOP, MemBudget: o.MemBudget, SpillDir: o.SpillDir,
		Fuse: o.Fuse, Gov: o.Gov,
	}
}

// Frontend is the SQL middleware: it accepts queries over UA-encoded tables
// (and over raw tables annotated with IS TI / IS X / IS CTABLE), compiles
// them against the logical schemas, rewrites the plan with RewriteUA, and
// executes against the encoded catalog.
type Frontend struct {
	// Enc holds UA-encoded tables: user columns plus a trailing uadb.UAttr.
	Enc *engine.Catalog
	// Raw holds un-encoded inputs referenced with model annotations.
	Raw *engine.Catalog
	// AEnc holds AU-encoded tables in the spine layout (3k+2 columns);
	// AttrBounds-mode queries plan and execute against it. Tables are
	// registered with PutAttrTable or derived on demand from Raw.
	AEnc *engine.Catalog
	// Opts are the frontend's default execution options, used when Query is
	// called with a zero QueryOpts by callers that configure the frontend
	// once (the CLIs) rather than per query (the server).
	Opts QueryOpts

	// plans, when enabled, caches rewritten logical plans keyed on
	// normalized SQL. See EnablePlanCache.
	plans *planCache

	// aMask maps AEnc table names to their range-uncertainty masks.
	aMu   sync.RWMutex
	aMask map[string][]bool
}

// NewFrontend returns a frontend over the given encoded catalog.
func NewFrontend(enc *engine.Catalog) *Frontend {
	return &Frontend{
		Enc: enc, Raw: engine.NewCatalog(), AEnc: engine.NewCatalog(),
		aMask: make(map[string][]bool),
	}
}

// PutAttrTable registers an AU-encoded table (and its uncertainty mask)
// for AttrBounds-mode queries under the given name.
func (f *Frontend) PutAttrTable(name string, at *AttrTable) {
	f.AEnc.PutAs(name, at.Table)
	f.aMu.Lock()
	f.aMask[strings.ToLower(name)] = at.Mask
	f.aMu.Unlock()
}

// attrMask resolves a table's range-uncertainty mask (nil: all certain).
func (f *Frontend) attrMask(name string) []bool {
	f.aMu.RLock()
	defer f.aMu.RUnlock()
	return f.aMask[strings.ToLower(name)]
}

// Query is the frontend's one execution entrypoint: parse → resolve model
// annotations → plan → UA-rewrite → execute, under ctx for cancellation and
// opt for execution strategy (a zero opt falls back to f.Opts). The result
// carries the user columns plus the trailing certainty column, columnar
// when the plan's root produces vectors and row-backed otherwise, rows
// materialized lazily — the *physical.Result contract shared with
// engine.Session. When the plan cache is enabled, annotation-free queries
// hit it keyed on their normalized SQL text and skip parse+plan+rewrite
// entirely.
func (f *Frontend) Query(ctx context.Context, query string, opt QueryOpts) (*physical.Result, error) {
	res, _, err := f.QueryCached(ctx, query, opt)
	return res, err
}

// QueryCached is Query with plan-cache observability: it also reports
// whether the rewritten plan came from the shared plan cache — the
// per-query bit the server's streaming result header carries. Annotated
// or cache-disabled queries always report false.
func (f *Frontend) QueryCached(ctx context.Context, query string, opt QueryOpts) (*physical.Result, bool, error) {
	if opt == (QueryOpts{}) {
		opt = f.Opts
	}
	if opt.AttrBounds {
		plan, hit, err := f.planAttrSQL(query)
		if err != nil {
			return nil, false, err
		}
		res, err := engine.NewSession(f.AEnc, opt.physical()).Execute(ctx, plan)
		return res, hit, err
	}
	plan, hit, err := f.planSQL(query)
	if err != nil {
		return nil, false, err
	}
	res, err := engine.NewSession(f.Enc, opt.physical()).Execute(ctx, plan)
	return res, hit, err
}

// PlanSQL compiles a UA-SQL string to its rewritten logical plan: parse,
// model-annotation resolution, deterministic planning, UA rewrite — the
// whole frontend except execution. With the plan cache enabled,
// annotation-free statements are served from (and added to) the cache;
// annotated statements always re-plan, because resolving an annotation
// encodes a fresh table into the catalog as a side effect.
func (f *Frontend) PlanSQL(query string) (algebraNode, error) {
	plan, _, err := f.planSQL(query)
	return plan, err
}

// planSQL is PlanSQL plus a cache-hit flag.
func (f *Frontend) planSQL(query string) (algebraNode, bool, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, false, err
	}
	if hasModelAnnotations(stmt) {
		// Bypass the cache entirely — no lookup, no stats — so annotated
		// traffic cannot masquerade as cache misses.
		if err := f.resolveAnnotations(stmt); err != nil {
			return nil, false, err
		}
		plan, err := f.Plan(stmt)
		return plan, false, err
	}
	var key string
	if f.plans != nil {
		key = NormalizeSQL(query)
		if plan, ok := f.plans.get(key); ok {
			return plan, true, nil
		}
	}
	plan, err := f.Plan(stmt)
	if err != nil {
		return nil, false, err
	}
	if f.plans != nil {
		f.plans.put(key, plan)
	}
	return plan, false, nil
}

// attrPlanKeyPrefix namespaces AttrBounds-mode entries in the shared plan
// cache: the same SQL text compiles to a structurally different plan per
// mode, so the two modes must never collide on a key. Normalized SQL can
// never start with a NUL byte (the lexer rejects it), so the prefix is
// collision-free against tuple-level keys.
const attrPlanKeyPrefix = "\x00attrbounds\x00"

// planAttrSQL is planSQL for AttrBounds mode: parse → resolve annotations
// into the AU catalog → deterministic plan → RewriteAttrBounds, cached
// under a mode-prefixed key.
func (f *Frontend) planAttrSQL(query string) (algebraNode, bool, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, false, err
	}
	if hasModelAnnotations(stmt) {
		if err := f.resolveAttrAnnotations(stmt); err != nil {
			return nil, false, err
		}
		plan, err := f.PlanAttr(stmt)
		return plan, false, err
	}
	f.ensureAttrDerived()
	var key string
	if f.plans != nil {
		key = attrPlanKeyPrefix + NormalizeSQL(query)
		if plan, ok := f.plans.get(key); ok {
			return plan, true, nil
		}
	}
	plan, err := f.PlanAttr(stmt)
	if err != nil {
		return nil, false, err
	}
	if f.plans != nil {
		f.plans.put(key, plan)
	}
	return plan, false, nil
}

// PlanAttr compiles and AU-rewrites a statement without executing it.
func (f *Frontend) PlanAttr(stmt *sql.SelectStmt) (algebraNode, error) {
	det, err := engine.NewPlanner(f.attrLogicalCatalog()).Plan(stmt)
	if err != nil {
		return nil, err
	}
	return RewriteAttrBounds(det, f.attrMask)
}

// attrLogicalCatalog exposes the AU-encoded tables with their spine layout
// collapsed back to the logical schemas, so deterministic planning sees the
// user's columns.
func (f *Frontend) attrLogicalCatalog() *engine.Catalog {
	out := engine.NewCatalog()
	for _, name := range f.AEnc.Names() {
		t := f.AEnc.Get(name)
		stub := engine.NewTable(types.Schema{Name: name, Attrs: attrLogicalAttrs(t.Schema.Attrs)})
		out.PutAs(name, stub)
	}
	return out
}

// ensureAttrDerived backfills the AU catalog from the raw catalog: a plain
// table queried in AttrBounds mode is deterministic input — collapsed
// ranges, every row certain. Registered AU tables are never overwritten.
func (f *Frontend) ensureAttrDerived() {
	for _, name := range f.Raw.Names() {
		if f.AEnc.Get(name) == nil {
			f.PutAttrTable(name, EncodeAttrDeterministic(f.Raw.Get(name)))
		}
	}
}

// resolveAttrAnnotations is resolveAnnotations for AttrBounds mode: IS TI
// and IS X annotations encode into the AU catalog with range-preserving
// labeling (phantom rows kept); C-tables have no range encoding.
func (f *Frontend) resolveAttrAnnotations(stmt *sql.SelectStmt) error {
	f.ensureAttrDerived()
	for s := stmt; s != nil; s = s.Union {
		for i := range s.From {
			if err := f.resolveAttrPrimary(&s.From[i].Primary); err != nil {
				return err
			}
			for j := range s.From[i].Joins {
				if err := f.resolveAttrPrimary(&s.From[i].Joins[j].Right); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (f *Frontend) resolveAttrPrimary(prim *sql.Primary) error {
	if prim.Subquery != nil {
		return f.resolveAttrAnnotations(prim.Subquery)
	}
	if prim.Model == nil {
		return nil
	}
	raw := f.Raw.Get(prim.Table)
	if raw == nil {
		return fmt.Errorf("rewrite: annotated table %q not found in the raw catalog", prim.Table)
	}
	var enc *AttrTable
	var err error
	switch prim.Model.Kind {
	case sql.ModelTI:
		enc, err = EncodeAttrTI(raw, prim.Model.ProbAttr)
	case sql.ModelX:
		enc, err = EncodeAttrXTable(raw, prim.Model.XidAttr, prim.Model.AltAttr, prim.Model.ProbAttr)
	case sql.ModelCTable:
		err = fmt.Errorf("rewrite: C-table inputs have no attribute-range encoding (use tuple-level mode)")
	default:
		err = fmt.Errorf("rewrite: unknown model kind")
	}
	if err != nil {
		return err
	}
	encName := "__au_" + prim.Table
	f.PutAttrTable(encName, enc)
	if prim.Alias == "" || strings.EqualFold(prim.Alias, prim.Table) {
		prim.Alias = prim.Table
	}
	prim.Table = encName
	prim.Model = nil
	return nil
}

// EnablePlanCache turns on the frontend's rewritten-plan cache with space
// for n plans (n <= 0 picks a default). Safe to call once before concurrent
// use; cached plans are immutable (the optimizer never mutates its input)
// and shared by concurrent executions. The server enables it; one-shot CLIs
// don't bother.
func (f *Frontend) EnablePlanCache(n int) {
	f.plans = newPlanCache(n)
}

// PlanCacheStats reports cache hits and misses (zeros when disabled).
func (f *Frontend) PlanCacheStats() (hits, misses int64) {
	if f.plans == nil {
		return 0, 0
	}
	return f.plans.stats()
}

// hasModelAnnotations reports whether any primary in the statement (unions
// and subqueries included) carries an IS TI / IS X / IS CTABLE annotation.
func hasModelAnnotations(stmt *sql.SelectStmt) bool {
	for s := stmt; s != nil; s = s.Union {
		for i := range s.From {
			if primaryAnnotated(&s.From[i].Primary) {
				return true
			}
			for j := range s.From[i].Joins {
				if primaryAnnotated(&s.From[i].Joins[j].Right) {
					return true
				}
			}
		}
	}
	return false
}

func primaryAnnotated(prim *sql.Primary) bool {
	if prim.Subquery != nil {
		return hasModelAnnotations(prim.Subquery)
	}
	return prim.Model != nil
}

// Run parses, rewrites, and executes a UA-SQL query.
//
// Deprecated: use Query with a context — it is the same path with an
// explicit QueryOpts and a lazily materialized result. Kept as a thin
// wrapper for external callers only.
func (f *Frontend) Run(query string) (*engine.Table, error) {
	res, err := f.Query(context.Background(), query, f.Opts)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

// RunStmt is Run over a pre-parsed statement.
//
// Deprecated: use Query with a context. Kept as a thin wrapper for external
// callers only.
func (f *Frontend) RunStmt(stmt *sql.SelectStmt) (*engine.Table, error) {
	if err := f.resolveAnnotations(stmt); err != nil {
		return nil, err
	}
	plan, err := f.Plan(stmt)
	if err != nil {
		return nil, err
	}
	res, err := engine.NewSession(f.Enc, f.Opts.physical()).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

// RunColumns is Run with a columnar result sink.
//
// Deprecated: use Query with a context — it already returns the columnar
// *physical.Result. Kept as a thin wrapper for external callers only.
func (f *Frontend) RunColumns(query string) (*physical.Result, error) {
	return f.Query(context.Background(), query, f.Opts)
}

// Explain parses, resolves annotations, compiles and rewrites the query,
// returning the rewritten logical plan's textual form without executing it.
func (f *Frontend) Explain(query string) (string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return "", err
	}
	if f.Opts.AttrBounds {
		if err := f.resolveAttrAnnotations(stmt); err != nil {
			return "", err
		}
		plan, err := f.PlanAttr(stmt)
		if err != nil {
			return "", err
		}
		return plan.String(), nil
	}
	if err := f.resolveAnnotations(stmt); err != nil {
		return "", err
	}
	plan, err := f.Plan(stmt)
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}

// Plan compiles and rewrites without executing.
func (f *Frontend) Plan(stmt *sql.SelectStmt) (algebraNode, error) {
	logical := f.logicalCatalog()
	det, err := engine.NewPlanner(logical).Plan(stmt)
	if err != nil {
		return nil, err
	}
	return RewriteUA(det)
}

type algebraNode = interface {
	Schema() types.Schema
	String() string
}

// logicalCatalog exposes the encoded tables with their certainty column
// stripped, so deterministic planning sees the logical schemas.
func (f *Frontend) logicalCatalog() *engine.Catalog {
	out := engine.NewCatalog()
	for _, name := range f.Enc.Names() {
		t := f.Enc.Get(name)
		attrs := t.Schema.Attrs
		if n := len(attrs); n > 0 && strings.EqualFold(attrs[n-1], uadb.UAttr) {
			attrs = attrs[:n-1]
		}
		stub := engine.NewTable(types.Schema{Name: t.Schema.Name, Attrs: attrs})
		out.Put(stub)
	}
	return out
}

// resolveAnnotations replaces model-annotated primaries with scans of
// freshly encoded tables derived from the raw catalog (Section 9.2).
func (f *Frontend) resolveAnnotations(stmt *sql.SelectStmt) error {
	for s := stmt; s != nil; s = s.Union {
		for i := range s.From {
			if err := f.resolvePrimary(&s.From[i].Primary); err != nil {
				return err
			}
			for j := range s.From[i].Joins {
				if err := f.resolvePrimary(&s.From[i].Joins[j].Right); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (f *Frontend) resolvePrimary(prim *sql.Primary) error {
	if prim.Subquery != nil {
		return f.resolveAnnotations(prim.Subquery)
	}
	if prim.Model == nil {
		return nil
	}
	raw := f.Raw.Get(prim.Table)
	if raw == nil {
		return fmt.Errorf("rewrite: annotated table %q not found in the raw catalog", prim.Table)
	}
	var enc *engine.Table
	var err error
	switch prim.Model.Kind {
	case sql.ModelTI:
		enc, err = EncodeTITable(raw, prim.Model.ProbAttr)
	case sql.ModelX:
		enc, err = EncodeXTable(raw, prim.Model.XidAttr, prim.Model.AltAttr, prim.Model.ProbAttr)
	case sql.ModelCTable:
		enc, err = EncodeCTableTable(raw, prim.Model.VarAttrs, prim.Model.CondAttr)
	default:
		err = fmt.Errorf("rewrite: unknown model kind")
	}
	if err != nil {
		return err
	}
	encName := "__ua_" + prim.Table
	f.Enc.PutAs(encName, enc)
	if prim.Alias == "" || strings.EqualFold(prim.Alias, prim.Table) {
		prim.Alias = prim.Table
	}
	prim.Table = encName
	prim.Model = nil
	return nil
}

// EncodeTITable implements the TI-DB labeling scheme of Section 9.2:
//
//	SELECT A..., CASE WHEN P = 1 THEN 1 ELSE 0 END AS C FROM R WHERE P >= 0.5
//
// The probability column is dropped from the output.
func EncodeTITable(t *engine.Table, probAttr string) (*engine.Table, error) {
	pIdx := t.Schema.IndexOf(probAttr)
	if pIdx < 0 {
		return nil, fmt.Errorf("rewrite: TI table %s has no probability attribute %q", t.Schema.Name, probAttr)
	}
	var attrs []string
	var keep []int
	for i, a := range t.Schema.Attrs {
		if i != pIdx {
			attrs = append(attrs, a)
			keep = append(keep, i)
		}
	}
	out := engine.NewTable(types.Schema{Name: t.Schema.Name, Attrs: append(attrs, uadb.UAttr)})
	for _, row := range t.Rows {
		p := row[pIdx]
		if p.IsNull() || !p.IsNumeric() || p.Float() < 0.5 {
			continue
		}
		c := int64(0)
		if p.Float() >= 1 {
			c = 1
		}
		nr := make([]types.Value, 0, len(keep)+1)
		for _, i := range keep {
			nr = append(nr, row[i])
		}
		nr = append(nr, types.NewInt(c))
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// EncodeXTable implements the x-DB labeling scheme of Section 9.2: for each
// x-tuple (group by the Xid attribute) the highest-probability alternative
// is designated when keeping the x-tuple is at least as likely as skipping
// it (max P(t) ≥ 1 − P(τ)); the designated row is certain iff its
// probability is 1. The xid/altid/probability columns are dropped.
func EncodeXTable(t *engine.Table, xidAttr, altAttr, probAttr string) (*engine.Table, error) {
	xIdx, aIdx, pIdx := t.Schema.IndexOf(xidAttr), t.Schema.IndexOf(altAttr), t.Schema.IndexOf(probAttr)
	if xIdx < 0 || aIdx < 0 || pIdx < 0 {
		return nil, fmt.Errorf("rewrite: x-table %s missing xid/altid/probability attribute", t.Schema.Name)
	}
	var attrs []string
	var keep []int
	for i, a := range t.Schema.Attrs {
		if i != xIdx && i != aIdx && i != pIdx {
			attrs = append(attrs, a)
			keep = append(keep, i)
		}
	}
	type group struct {
		bestRow   []types.Value
		bestProb  float64
		total     float64
		firstSeen int
	}
	groups := make(map[string]*group)
	var order []string
	for rowIdx, row := range t.Rows {
		key := types.Tuple{row[xIdx]}.Key()
		g, ok := groups[key]
		if !ok {
			g = &group{firstSeen: rowIdx}
			groups[key] = g
			order = append(order, key)
		}
		p := 0.0
		if row[pIdx].IsNumeric() {
			p = row[pIdx].Float()
		}
		g.total += p
		if g.bestRow == nil || p > g.bestProb {
			g.bestRow, g.bestProb = row, p
		}
	}
	sort.Strings(order)
	out := engine.NewTable(types.Schema{Name: t.Schema.Name, Attrs: append(attrs, uadb.UAttr)})
	for _, key := range order {
		g := groups[key]
		if g.bestProb < 1-g.total {
			continue // absence is more likely than any alternative
		}
		c := int64(0)
		if g.bestProb >= 1 {
			c = 1
		}
		nr := make([]types.Value, 0, len(keep)+1)
		for _, i := range keep {
			nr = append(nr, g.bestRow[i])
		}
		nr = append(nr, types.NewInt(c))
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// EncodeCTableTable implements the C-table labeling scheme of Section 9.2:
// rows whose variable shadow attributes are all NULL (i.e. ground rows) are
// kept, labeled certain iff their local condition is a CNF tautology (the
// isTautology UDF of the paper, implemented by internal/cond). The shadow
// and condition columns are dropped. An empty or NULL condition counts as
// TRUE.
func EncodeCTableTable(t *engine.Table, varAttrs []string, condAttr string) (*engine.Table, error) {
	cIdx := t.Schema.IndexOf(condAttr)
	if cIdx < 0 {
		return nil, fmt.Errorf("rewrite: C-table %s has no condition attribute %q", t.Schema.Name, condAttr)
	}
	varIdx := make([]int, len(varAttrs))
	drop := map[int]bool{cIdx: true}
	for i, a := range varAttrs {
		j := t.Schema.IndexOf(a)
		if j < 0 {
			return nil, fmt.Errorf("rewrite: C-table %s has no variable attribute %q", t.Schema.Name, a)
		}
		varIdx[i] = j
		drop[j] = true
	}
	var attrs []string
	var keep []int
	for i, a := range t.Schema.Attrs {
		if !drop[i] {
			attrs = append(attrs, a)
			keep = append(keep, i)
		}
	}
	out := engine.NewTable(types.Schema{Name: t.Schema.Name, Attrs: append(attrs, uadb.UAttr)})
	for _, row := range t.Rows {
		ground := true
		for _, j := range varIdx {
			if !row[j].IsNull() {
				ground = false
				break
			}
		}
		if !ground {
			continue
		}
		c := int64(0)
		lc := row[cIdx]
		if lc.IsNull() || (lc.Kind() == types.KindString && strings.TrimSpace(lc.Str()) == "") {
			c = 1 // no condition: always present
		} else if lc.Kind() == types.KindString {
			e, err := cond.Parse(lc.Str())
			if err != nil {
				return nil, fmt.Errorf("rewrite: bad local condition %q: %w", lc.Str(), err)
			}
			if cond.IsCNF(e) && cond.CNFTautology(e) {
				c = 1
			}
		}
		nr := make([]types.Value, 0, len(keep)+1)
		for _, i := range keep {
			nr = append(nr, row[i])
		}
		nr = append(nr, types.NewInt(c))
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// EncodeDeterministic marks every row of a plain table certain — the
// encoding of a deterministic input joined with uncertain ones.
func EncodeDeterministic(t *engine.Table) *engine.Table {
	out := engine.NewTable(types.Schema{
		Name:  t.Schema.Name,
		Attrs: append(append([]string{}, t.Schema.Attrs...), uadb.UAttr),
	})
	for _, row := range t.Rows {
		nr := make([]types.Value, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, types.NewInt(1))
		out.Rows = append(out.Rows, nr)
	}
	return out
}
