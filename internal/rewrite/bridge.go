package rewrite

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// TableFromRelation expands an N-relation into an engine table, emitting
// each tuple as many times as its multiplicity — the physical bag
// representation a DBMS uses.
func TableFromRelation(r *kdb.Relation[int64]) *engine.Table {
	out := engine.NewTable(r.Schema())
	for _, t := range r.Tuples() {
		k := r.Get(t)
		for i := int64(0); i < k; i++ {
			out.Rows = append(out.Rows, append([]types.Value{}, t...))
		}
	}
	return out
}

// RelationFromTable counts duplicate rows of a table into an N-relation.
func RelationFromTable(t *engine.Table) *kdb.Relation[int64] {
	out := kdb.New[int64](semiring.Nat, t.Schema)
	for _, row := range t.Rows {
		out.Add(types.Tuple(row), 1)
	}
	return out
}

// TableFromUA encodes a UA-relation as the physical table with the trailing
// certainty column (composing Definition 8's Enc with the bag expansion).
func TableFromUA(r *uadb.Relation[int64]) *engine.Table {
	return TableFromRelation(uadb.Enc(r))
}

// UAFromTable decodes a physical result table (user columns + trailing C)
// back into a UA-relation.
func UAFromTable(t *engine.Table) (*uadb.Relation[int64], error) {
	n := t.Schema.Arity()
	if n < 1 {
		return nil, fmt.Errorf("rewrite: result table has no certainty column")
	}
	return uadb.Dec(RelationFromTable(t))
}

// EncodeUADatabase loads every relation of a UA-database into an encoded
// engine catalog.
func EncodeUADatabase(db *uadb.Database[int64]) *engine.Catalog {
	cat := engine.NewCatalog()
	for _, r := range db.Relations {
		cat.Put(TableFromUA(r))
	}
	return cat
}

// DetCatalog extracts the best-guess world of a UA-database as a plain
// catalog — the tables deterministic (BGQP) queries run against.
func DetCatalog(db *uadb.Database[int64]) *engine.Catalog {
	cat := engine.NewCatalog()
	for _, r := range db.Relations {
		det := uadb.DetPart[int64](semiring.Nat, r)
		cat.Put(TableFromRelation(det))
	}
	return cat
}
