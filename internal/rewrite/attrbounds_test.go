package rewrite

import (
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/types"
)

// attrFront builds an AttrBounds-mode frontend over the given AU tables.
func attrFront(t *testing.T, tables map[string]*AttrTable) *Frontend {
	t.Helper()
	front := NewFrontend(engine.NewCatalog())
	front.Opts = QueryOpts{AttrBounds: true}
	for name, at := range tables {
		front.PutAttrTable(name, at)
	}
	return front
}

// saleXRel is the shared uncertain fixture: four x-tuples over
// (cat string certain, qty int possibly-uncertain).
//
//	t1: certain        ("a", 10)
//	t2: qty ∈ {20,30}  ("a", ?)      — value-uncertain, existence-certain
//	t3: optional       ("b", 5)      — existence-uncertain
//	t4: certain        ("b", 7)
func saleXRel() *models.XRelation {
	r := models.NewXRelation(types.NewSchema("sale", "cat", "qty"))
	r.AddCertain(types.Tuple{sv("a"), iv(10)})
	r.AddChoice(types.Tuple{sv("a"), iv(20)}, types.Tuple{sv("a"), iv(30)})
	r.Add(models.XTuple{Alts: []models.Alternative{{Data: types.Tuple{sv("b"), iv(5)}, Prob: 1}}, Optional: true})
	r.AddCertain(types.Tuple{sv("b"), iv(7)})
	return r
}

func TestEncodeAttrX(t *testing.T) {
	at, err := EncodeAttrX(saleXRel())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := at.Mask, []bool{false, true}; got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("mask = %v, want %v", got, want)
	}
	if len(at.Table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(at.Table.Rows))
	}
	// Row 1: qty range [20, 20, 30] (first alternative designated), ec=1.
	r := at.Table.Rows[1]
	if r[3].Int() != 20 || r[4].Int() != 20 || r[5].Int() != 30 {
		t.Fatalf("qty spine = %v %v %v, want 20 20 30", r[3], r[4], r[5])
	}
	if r[6].Int() != 1 || r[7].Int() != 1 {
		t.Fatalf("t2 annotations = %v %v, want 1 1 (value-uncertain but existence-certain)", r[6], r[7])
	}
	// Row 2: optional — ec=0, ebg=1 (first alternative designated).
	r = at.Table.Rows[2]
	if r[6].Int() != 0 || r[7].Int() != 1 {
		t.Fatalf("optional annotations = %v %v, want 0 1", r[6], r[7])
	}
}

// TestAttrBoundsDeterministic pins the collapsed-range invariant: over
// all-certain input the three spines agree and both annotations are 1.
func TestAttrBoundsDeterministic(t *testing.T) {
	tbl := engine.NewTable(types.NewSchema("r", "x"))
	tbl.AppendVals(iv(1))
	tbl.AppendVals(iv(2))
	front := attrFront(t, map[string]*AttrTable{"r": EncodeAttrDeterministic(tbl)})
	out, err := runFront(front, "SELECT x + 1 AS y FROM r WHERE x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	wantAttrs := []string{"y__lo", "y", "y__hi", AttrECName, AttrEBGName}
	if got := out.Schema.Attrs; strings.Join(got, ",") != strings.Join(wantAttrs, ",") {
		t.Fatalf("schema = %v, want %v", got, wantAttrs)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("rows = %v, want one", out.Rows)
	}
	r := out.Rows[0]
	if r[0].Int() != 3 || r[1].Int() != 3 || r[2].Int() != 3 || r[3].Int() != 1 || r[4].Int() != 1 {
		t.Fatalf("row = %v, want [3 3 3 1 1]", r)
	}
}

// TestAttrBoundsFilterPhantom pins the phantom-row rule: a row passing the
// filter only in some worlds stays with downgraded annotations, a row
// passing in none disappears.
func TestAttrBoundsFilterPhantom(t *testing.T) {
	at, err := EncodeAttrX(saleXRel())
	if err != nil {
		t.Fatal(err)
	}
	front := attrFront(t, map[string]*AttrTable{"sale": at})
	out, err := runFront(front, "SELECT qty FROM sale WHERE qty > 25")
	if err != nil {
		t.Fatal(err)
	}
	// Only t2 possibly passes (25 < 30); it certainly passes in no world
	// (20 ≤ 25) and fails in the best-guess world (qty=20).
	if len(out.Rows) != 1 {
		t.Fatalf("rows = %v, want the one possibly-passing row", out.Rows)
	}
	r := out.Rows[0]
	if r[0].Int() != 20 || r[2].Int() != 30 {
		t.Fatalf("qty range = [%v, %v], want [20, 30]", r[0], r[2])
	}
	if r[3].Int() != 0 || r[4].Int() != 0 {
		t.Fatalf("annotations = %v %v, want 0 0 (phantom)", r[3], r[4])
	}
}

// TestAttrBoundsAggregate hand-checks every aggregate's [lo, bg, hi] over
// the shared fixture, grouped by the certain attribute.
//
// Group "a": t1 (10 certain) + t2 (qty ∈ {20,30}, best guess 20).
// Group "b": t3 (5, optional, in best-guess world) + t4 (7 certain).
func TestAttrBoundsAggregate(t *testing.T) {
	at, err := EncodeAttrX(saleXRel())
	if err != nil {
		t.Fatal(err)
	}
	front := attrFront(t, map[string]*AttrTable{"sale": at})
	out, err := runFront(front,
		"SELECT cat, COUNT(*) AS n, SUM(qty) AS s, MIN(qty) AS mn, MAX(qty) AS mx, AVG(qty) AS av FROM sale GROUP BY cat ORDER BY cat")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("groups = %v, want 2", out.Rows)
	}
	type want struct {
		cat                string
		n, s, mn, mx       [3]float64
		av                 [3]float64
		ec, ebg            int64
	}
	wants := []want{
		{cat: "a",
			n:  [3]float64{2, 2, 2},
			s:  [3]float64{30, 30, 40},  // 10+20 .. 10+30
			mn: [3]float64{10, 10, 10},  // 10 certain caps the min
			mx: [3]float64{20, 20, 30},  // certain row floors the max at max(lo)=20
			av: [3]float64{10, 15, 30},  // [min lo, bg avg, max hi]
			ec: 1, ebg: 1},
		{cat: "b",
			n:  [3]float64{1, 2, 2},    // t3 may be absent
			s:  [3]float64{7, 12, 12},  // phantom contributes min(5,0)=0 below
			mn: [3]float64{5, 5, 7},    // without t3 the min is 7
			mx: [3]float64{7, 7, 7},    // t4 certain: max ≥ 7; no larger upper
			av: [3]float64{5, 6, 7},
			ec: 1, ebg: 1},
	}
	for gi, w := range wants {
		r := out.Rows[gi]
		if r[1].Str() != w.cat {
			t.Fatalf("group %d = %v, want cat %s", gi, r, w.cat)
		}
		checks := []struct {
			name string
			at   int
			want [3]float64
		}{{"count", 3, w.n}, {"sum", 6, w.s}, {"min", 9, w.mn}, {"max", 12, w.mx}, {"avg", 15, w.av}}
		for _, c := range checks {
			for d := 0; d < 3; d++ {
				got := r[c.at+d].Float()
				if math.Abs(got-c.want[d]) > 1e-9 {
					t.Errorf("cat %s %s arm %d = %v, want %v (row %v)", w.cat, c.name, d, got, c.want[d], r)
				}
			}
		}
		if r[18].Int() != w.ec || r[19].Int() != w.ebg {
			t.Errorf("cat %s annotations = %v %v, want %d %d", w.cat, r[18], r[19], w.ec, w.ebg)
		}
	}
}

// TestAttrBoundsGlobalAggregateEmpty pins the empty-input global group:
// it exists in every world with COUNT 0.
func TestAttrBoundsGlobalAggregateEmpty(t *testing.T) {
	tbl := engine.NewTable(types.NewSchema("r", "x"))
	front := attrFront(t, map[string]*AttrTable{"r": EncodeAttrDeterministic(tbl)})
	out, err := runFront(front, "SELECT COUNT(*) AS n, SUM(x) AS s FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("rows = %v, want one global row", out.Rows)
	}
	r := out.Rows[0]
	for d := 0; d < 3; d++ {
		if r[d].Int() != 0 {
			t.Fatalf("count arm %d = %v, want 0", d, r[d])
		}
		if !r[3+d].IsNull() {
			t.Fatalf("sum arm %d = %v, want NULL", d, r[3+d])
		}
	}
	if r[6].Int() != 1 || r[7].Int() != 1 {
		t.Fatalf("annotations = %v %v, want 1 1", r[6], r[7])
	}
}

// TestAttrBoundsRejects pins the clear-error cases: grouping, equi-joins,
// and DISTINCT over range-uncertain attributes.
func TestAttrBoundsRejects(t *testing.T) {
	at, err := EncodeAttrX(saleXRel())
	if err != nil {
		t.Fatal(err)
	}
	at2, err := EncodeAttrX(saleXRel())
	if err != nil {
		t.Fatal(err)
	}
	front := attrFront(t, map[string]*AttrTable{"sale": at, "sale2": at2})
	for _, q := range []string{
		"SELECT qty, COUNT(*) AS n FROM sale GROUP BY qty",
		"SELECT DISTINCT cat FROM sale",
		"SELECT s.cat FROM sale s, sale2 t WHERE s.qty = t.qty",
	} {
		if _, err := runFront(front, q); err == nil {
			t.Errorf("%s: expected an error, got none", q)
		}
	}
	// But a range comparison over the uncertain attribute is fine.
	if _, err := runFront(front, "SELECT s.cat FROM sale s, sale2 t WHERE s.qty < t.qty"); err != nil {
		t.Errorf("range residual join: %v", err)
	}
}

// TestAttrBoundsTupleModeUntouched pins that the tuple-level path ignores
// the AU catalog entirely: the same frontend answers both modes.
func TestAttrBoundsTupleModeUntouched(t *testing.T) {
	tbl := engine.NewTable(types.NewSchema("r", "x"))
	tbl.AppendVals(iv(4))
	front := NewFrontend(engine.NewCatalog())
	front.Raw.Put(tbl)
	front.Enc.Put(EncodeDeterministic(tbl))
	front.PutAttrTable("r", EncodeAttrDeterministic(tbl))

	ua, err := runFront(front, "SELECT x FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(ua.Schema.Attrs, ","); got != "x,__cert" {
		t.Fatalf("tuple-level schema = %q, want x,__cert", got)
	}
	front.Opts = QueryOpts{AttrBounds: true}
	au, err := runFront(front, "SELECT x FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(au.Schema.Attrs, ","); got != "x__lo,x,x__hi,__ec,__ebg" {
		t.Fatalf("attr-bounds schema = %q", got)
	}
}
