// Package rewrite implements the UA-DB query-rewriting frontend of Section 9:
// bag UA-relations are stored as ordinary tables with a trailing certainty
// column C ∈ {0, 1} (uadb.UAttr), deterministic logical plans are rewritten
// by the rules of Figure 9 to propagate C, and the labeling schemes of
// Section 9.2 convert TI / x-DB / C-table inputs into the encoding.
package rewrite

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/uadb"
)

// RewriteUA transforms a deterministic logical plan into its UA-DB
// equivalent per Figure 9. The input plan must be compiled against the
// *logical* schemas (without the certainty column); the output plan runs
// against the encoded catalog, where every base table carries a trailing
// uadb.UAttr column. The transformed plan preserves the position of every
// user column and appends C as the last output column.
//
//	⟦R⟧          = scan of the encoded table
//	⟦σ_θ(Q)⟧     = σ_θ(⟦Q⟧)                            (θ ignores C)
//	⟦π_A(Q)⟧     = π_{A,C}(⟦Q⟧)
//	⟦Q1 ⋈_θ Q2⟧  = π_{Sch, least(Q1.C, Q2.C) → C}(⟦Q1⟧ ⋈_θ ⟦Q2⟧)
//	⟦Q1 ∪ Q2⟧    = ⟦Q1⟧ UNION ALL ⟦Q2⟧
//
// Sort and Limit pass through (they are display conveniences outside RA⁺);
// Distinct and Aggregate are rejected because UA-DB query semantics is
// defined for RA⁺ (the paper lists aggregation as future work).
func RewriteUA(n algebra.Node) (algebra.Node, error) {
	out, _, err := rewriteNode(n)
	return out, err
}

// rewriteNode returns the transformed node and the position of the C column
// in its output (always the last column).
func rewriteNode(n algebra.Node) (algebra.Node, int, error) {
	switch node := n.(type) {
	case *algebra.Scan:
		encSchema := types.Schema{
			Name:  node.TblSchema.Name,
			Attrs: append(append([]string{}, node.TblSchema.Attrs...), uadb.UAttr),
		}
		return &algebra.Scan{Table: node.Table, TblSchema: encSchema}, len(node.TblSchema.Attrs), nil

	case *algebra.Filter:
		in, cPos, err := rewriteNode(node.Input)
		if err != nil {
			return nil, 0, err
		}
		// The predicate references user columns only; their positions are
		// unchanged because C is appended at the end.
		return &algebra.Filter{Input: in, Pred: node.Pred}, cPos, nil

	case *algebra.Project:
		in, cPos, err := rewriteNode(node.Input)
		if err != nil {
			return nil, 0, err
		}
		exprs := append(append([]algebra.Expr{}, node.Exprs...), algebra.Col{Idx: cPos, Name: uadb.UAttr})
		names := append(append([]string{}, node.Names...), uadb.UAttr)
		return &algebra.Project{Input: in, Exprs: exprs, Names: names}, len(node.Exprs), nil

	case *algebra.Join:
		l, lcPos, err := rewriteNode(node.Left)
		if err != nil {
			return nil, 0, err
		}
		r, rcPos, err := rewriteNode(node.Right)
		if err != nil {
			return nil, 0, err
		}
		lArity := node.Left.Schema().Arity() // user columns on the left
		rArity := node.Right.Schema().Arity()
		// The joined row layout is l-user..., lC, r-user..., rC. Residual
		// expressions were compiled against l-user..., r-user...: right-side
		// positions shift by one (the interposed lC column).
		var residual algebra.Expr
		if node.Residual != nil {
			residual = shiftCols(node.Residual, lArity, 1)
		}
		join := &algebra.Join{
			Left: l, Right: r,
			EquiL: node.EquiL, EquiR: node.EquiR, // right-relative: unaffected
			Residual: residual,
		}
		// Reproject to user columns in original positions + least(lC, rC).
		exprs := make([]algebra.Expr, 0, lArity+rArity+1)
		names := make([]string, 0, lArity+rArity+1)
		for i := 0; i < lArity; i++ {
			exprs = append(exprs, algebra.Col{Idx: i, Name: node.Left.Schema().Attrs[i]})
			names = append(names, node.Left.Schema().Attrs[i])
		}
		for i := 0; i < rArity; i++ {
			exprs = append(exprs, algebra.Col{Idx: lArity + 1 + i, Name: node.Right.Schema().Attrs[i]})
			names = append(names, node.Right.Schema().Attrs[i])
		}
		_ = rcPos
		exprs = append(exprs, algebra.ScalarFunc{Name: "least", Args: []algebra.Expr{
			algebra.Col{Idx: lcPos, Name: uadb.UAttr},
			algebra.Col{Idx: lArity + 1 + rArity, Name: uadb.UAttr},
		}})
		names = append(names, uadb.UAttr)
		return &algebra.Project{Input: join, Exprs: exprs, Names: names}, lArity + rArity, nil

	case *algebra.UnionAll:
		l, lcPos, err := rewriteNode(node.Left)
		if err != nil {
			return nil, 0, err
		}
		r, _, err := rewriteNode(node.Right)
		if err != nil {
			return nil, 0, err
		}
		return &algebra.UnionAll{Left: l, Right: r}, lcPos, nil

	case *algebra.Sort:
		in, cPos, err := rewriteNode(node.Input)
		if err != nil {
			return nil, 0, err
		}
		return &algebra.Sort{Input: in, Keys: node.Keys}, cPos, nil

	case *algebra.Limit:
		in, cPos, err := rewriteNode(node.Input)
		if err != nil {
			return nil, 0, err
		}
		return &algebra.Limit{Input: in, N: node.N}, cPos, nil

	case *algebra.Distinct:
		return nil, 0, fmt.Errorf("rewrite: DISTINCT is outside RA⁺ UA-DB semantics (use bag queries)")
	case *algebra.Aggregate:
		return nil, 0, fmt.Errorf("rewrite: aggregation over UA-DBs is future work in the paper and unsupported")
	default:
		return nil, 0, fmt.Errorf("rewrite: unsupported plan node %T", n)
	}
}

// shiftCols returns a copy of e with every column index ≥ threshold shifted
// by delta.
func shiftCols(e algebra.Expr, threshold, delta int) algebra.Expr {
	return algebra.ShiftCols(e, threshold, delta)
}
