package rewrite

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
)

func TestNormalizeSQL(t *testing.T) {
	cases := []struct {
		a, b string
		same bool
	}{
		{"SELECT a FROM r", "select  a\n from\tr", true},
		{"SELECT a FROM r", "SELECT a FROM r;", true},
		{"SELECT a FROM r", "SELECT a FROM r ; ", true},
		{"SELECT a FROM r WHERE x = 'Lit'", "select a from r where x = 'Lit'", true},
		// Quoted literals keep their case and spacing.
		{"SELECT a FROM r WHERE x = 'Lit'", "SELECT a FROM r WHERE x = 'lit'", false},
		{"SELECT a FROM r WHERE x = 'a  b'", "SELECT a FROM r WHERE x = 'a b'", false},
		// Doubled-quote escapes stay inside the literal.
		{"SELECT a FROM r WHERE x = 'it''s'", "select a from r where x = 'it''s'", true},
		{"SELECT a FROM r", "SELECT b FROM r", false},
	}
	for _, c := range cases {
		na, nb := NormalizeSQL(c.a), NormalizeSQL(c.b)
		if (na == nb) != c.same {
			t.Errorf("NormalizeSQL(%q)=%q vs NormalizeSQL(%q)=%q: same=%v, want %v",
				c.a, na, c.b, nb, na == nb, c.same)
		}
	}
}

// cacheFrontend builds a frontend with one encoded table and one raw table
// for annotated statements.
func cacheFrontend() *Frontend {
	front := NewFrontend(engine.NewCatalog())
	r := engine.NewTable(types.NewSchema("r", "a", "b"))
	r.AppendVals(iv(1), iv(10))
	r.AppendVals(iv(2), iv(20))
	front.Enc.Put(EncodeDeterministic(r))
	s := engine.NewTable(types.NewSchema("s", "id", "p"))
	s.AppendVals(iv(1), types.NewFloat(0.9))
	front.Raw.Put(s)
	return front
}

// TestPlanCacheHit: the same query replans once, spelling variants share
// the entry, and cached plans execute correctly.
func TestPlanCacheHit(t *testing.T) {
	front := cacheFrontend()
	front.EnablePlanCache(8)
	for i := 0; i < 3; i++ {
		res, err := runFront(front, "SELECT a FROM r WHERE b > 15")
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("run %d: rows = %d, want 1", i, res.NumRows())
		}
	}
	if _, err := runFront(front, "select  a from r\nwhere b > 15"); err != nil {
		t.Fatal(err)
	}
	hits, misses := front.PlanCacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (one distinct plan)", misses)
	}
	if hits != 3 {
		t.Errorf("hits = %d, want 3", hits)
	}
}

// TestPlanCacheAnnotatedBypass: model-annotated statements re-plan every
// time (annotation resolution mutates the statement and registers encoded
// tables) and never enter the cache.
func TestPlanCacheAnnotatedBypass(t *testing.T) {
	front := cacheFrontend()
	front.EnablePlanCache(8)
	const q = "SELECT id FROM s IS TI WITH PROBABILITY (p)"
	for i := 0; i < 2; i++ {
		res, err := runFront(front, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("run %d: rows = %d, want 1", i, res.NumRows())
		}
	}
	hits, misses := front.PlanCacheStats()
	if hits != 0 || misses != 0 {
		t.Errorf("annotated statements touched the cache: hits=%d misses=%d", hits, misses)
	}
}

// TestPlanCacheEviction: the LRU keeps its capacity and evicted entries
// simply replan.
func TestPlanCacheEviction(t *testing.T) {
	front := cacheFrontend()
	front.EnablePlanCache(1)
	if _, err := runFront(front, "SELECT a FROM r"); err != nil {
		t.Fatal(err)
	}
	if _, err := runFront(front, "SELECT b FROM r"); err != nil { // evicts the first
		t.Fatal(err)
	}
	if _, err := runFront(front, "SELECT a FROM r"); err != nil { // replans
		t.Fatal(err)
	}
	hits, misses := front.PlanCacheStats()
	if hits != 0 || misses != 3 {
		t.Errorf("hits=%d misses=%d, want 0/3 with capacity 1", hits, misses)
	}
}
