package rewrite

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/types"
)

func TestNormalizeSQL(t *testing.T) {
	cases := []struct {
		a, b string
		same bool
	}{
		{"SELECT a FROM r", "select  a\n from\tr", true},
		{"SELECT a FROM r", "SELECT a FROM r;", true},
		{"SELECT a FROM r", "SELECT a FROM r ; ", true},
		{"SELECT a FROM r WHERE x = 'Lit'", "select a from r where x = 'Lit'", true},
		// Quoted literals keep their case and spacing.
		{"SELECT a FROM r WHERE x = 'Lit'", "SELECT a FROM r WHERE x = 'lit'", false},
		{"SELECT a FROM r WHERE x = 'a  b'", "SELECT a FROM r WHERE x = 'a b'", false},
		// Doubled-quote escapes stay inside the literal.
		{"SELECT a FROM r WHERE x = 'it''s'", "select a from r where x = 'it''s'", true},
		{"SELECT a FROM r", "SELECT b FROM r", false},
		// Backslash escapes stay inside the literal too: statements
		// differing only after an escaped quote must not share a key.
		{`SELECT a FROM r WHERE x = 'it\'s ok'`, `SELECT a FROM r WHERE x = 'it\'S ok'`, false},
		{`SELECT a FROM r WHERE x = 'it\'s'`, `select a from r where x = 'it\'s'`, true},
		{`SELECT a FROM r WHERE x = 'a\\'`, `SELECT a FROM r WHERE x = 'a\\'`, true},
		// Line comments are dropped exactly as the lexer drops them...
		{"SELECT a FROM r -- note\n", "SELECT a FROM r", true},
		{"SELECT a -- one\nFROM r", "select a\nfrom r", true},
		// ...so an apostrophe inside a comment cannot desync the literal
		// tracking and fold a literal's case difference away.
		{"SELECT a FROM r -- don't\nWHERE x = 'P'", "SELECT a FROM r -- don't\nWHERE x = 'p'", false},
		// A comment marker inside a literal is literal text, not a comment.
		{"SELECT a FROM r WHERE x = '--note'", "SELECT a FROM r WHERE x = '--NOTE'", false},
	}
	for _, c := range cases {
		na, nb := NormalizeSQL(c.a), NormalizeSQL(c.b)
		if (na == nb) != c.same {
			t.Errorf("NormalizeSQL(%q)=%q vs NormalizeSQL(%q)=%q: same=%v, want %v",
				c.a, na, c.b, nb, na == nb, c.same)
		}
	}
}

// cacheFrontend builds a frontend with one encoded table and one raw table
// for annotated statements.
func cacheFrontend() *Frontend {
	front := NewFrontend(engine.NewCatalog())
	r := engine.NewTable(types.NewSchema("r", "a", "b"))
	r.AppendVals(iv(1), iv(10))
	r.AppendVals(iv(2), iv(20))
	front.Enc.Put(EncodeDeterministic(r))
	s := engine.NewTable(types.NewSchema("s", "id", "p"))
	s.AppendVals(iv(1), types.NewFloat(0.9))
	front.Raw.Put(s)
	return front
}

// TestPlanCacheHit: the same query replans once, spelling variants share
// the entry, and cached plans execute correctly.
func TestPlanCacheHit(t *testing.T) {
	front := cacheFrontend()
	front.EnablePlanCache(8)
	for i := 0; i < 3; i++ {
		res, err := runFront(front, "SELECT a FROM r WHERE b > 15")
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("run %d: rows = %d, want 1", i, res.NumRows())
		}
	}
	if _, err := runFront(front, "select  a from r\nwhere b > 15"); err != nil {
		t.Fatal(err)
	}
	hits, misses := front.PlanCacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (one distinct plan)", misses)
	}
	if hits != 3 {
		t.Errorf("hits = %d, want 3", hits)
	}
}

// TestPlanCacheAnnotatedBypass: model-annotated statements re-plan every
// time (annotation resolution mutates the statement and registers encoded
// tables) and never enter the cache.
func TestPlanCacheAnnotatedBypass(t *testing.T) {
	front := cacheFrontend()
	front.EnablePlanCache(8)
	const q = "SELECT id FROM s IS TI WITH PROBABILITY (p)"
	for i := 0; i < 2; i++ {
		res, err := runFront(front, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("run %d: rows = %d, want 1", i, res.NumRows())
		}
	}
	hits, misses := front.PlanCacheStats()
	if hits != 0 || misses != 0 {
		t.Errorf("annotated statements touched the cache: hits=%d misses=%d", hits, misses)
	}
}

// TestPlanCacheKeySoundness runs the collision shapes end to end: two
// statements that differ only inside a string literal — with the
// difference hidden behind an escaped quote or a line comment — must plan
// separately and each return its own rows, never the other's cached plan.
func TestPlanCacheKeySoundness(t *testing.T) {
	front := NewFrontend(engine.NewCatalog())
	tbl := engine.NewTable(types.NewSchema("t", "id", "s"))
	tbl.AppendVals(iv(1), sv("p"))
	tbl.AppendVals(iv(2), sv("P"))
	tbl.AppendVals(iv(3), sv("don't"))
	tbl.AppendVals(iv(4), sv("don'T"))
	front.Enc.Put(EncodeDeterministic(tbl))
	front.EnablePlanCache(8)

	for _, c := range []struct {
		q    string
		want int64
	}{
		// The literal case difference sits after an apostrophe inside a
		// comment: a comment-blind key folds both to one slot.
		{"SELECT id FROM t -- don't\nWHERE s = 'p'", 1},
		{"SELECT id FROM t -- don't\nWHERE s = 'P'", 2},
		// The difference sits after a backslash-escaped quote inside the
		// literal: an escape-blind key closes the literal early.
		{`SELECT id FROM t WHERE s = 'don\'t'`, 3},
		{`SELECT id FROM t WHERE s = 'don\'T'`, 4},
	} {
		res, err := runFront(front, c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Int() != c.want {
			t.Errorf("%s: rows = %v, want the single id %d", c.q, res.Rows, c.want)
		}
	}
}

// TestPlanCacheEviction: the LRU keeps its capacity and evicted entries
// simply replan.
func TestPlanCacheEviction(t *testing.T) {
	front := cacheFrontend()
	front.EnablePlanCache(1)
	if _, err := runFront(front, "SELECT a FROM r"); err != nil {
		t.Fatal(err)
	}
	if _, err := runFront(front, "SELECT b FROM r"); err != nil { // evicts the first
		t.Fatal(err)
	}
	if _, err := runFront(front, "SELECT a FROM r"); err != nil { // replans
		t.Fatal(err)
	}
	hits, misses := front.PlanCacheStats()
	if hits != 0 || misses != 3 {
		t.Errorf("hits=%d misses=%d, want 0/3 with capacity 1", hits, misses)
	}
}
