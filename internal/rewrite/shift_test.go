package rewrite

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
)

// Direct coverage of shiftCols across every expression node: the join
// rewriting shifts right-side column references past the interposed
// certainty column, and any unshifted reference would silently read the
// wrong column.

func col(i int) algebra.Expr { return algebra.Col{Idx: i, Name: "c"} }

func TestShiftColsAllNodes(t *testing.T) {
	cases := []struct {
		in   algebra.Expr
		want string // String() of the shifted expression
	}{
		{col(1), "c#1"},                          // below threshold: untouched
		{col(2), "c#3"},                          // at threshold: shifted
		{algebra.Const{V: types.NewInt(5)}, "5"}, // constants untouched
		{algebra.Bin{Op: algebra.OpEq, L: col(0), R: col(4)}, "(c#0 = c#5)"},
		{algebra.Not{E: col(2)}, "NOT (c#3)"},
		{algebra.Neg{E: col(3)}, "-(c#4)"},
		{algebra.IsNullE{E: col(2)}, "(c#3 IS NULL)"},
		{algebra.LikeE{E: col(2), Pattern: algebra.Const{V: types.NewString("%")}}, "(c#3 LIKE '%')"},
		{algebra.InE{E: col(2), List: []algebra.Expr{col(0), col(5)}}, "(c#3 IN (c#0, c#6))"},
		{algebra.BetweenE{E: col(2), Lo: col(0), Hi: col(9)}, "(c#3 BETWEEN c#0 AND c#10)"},
		{algebra.ScalarFunc{Name: "least", Args: []algebra.Expr{col(1), col(2)}}, "least(c#1, c#3)"},
		{algebra.CaseExpr{
			Operand: col(2),
			Whens:   []algebra.CaseWhen{{Cond: col(3), Result: col(0)}},
			Else:    col(4),
		}, "CASE WHEN c#4 THEN c#0 ELSE c#5 END"},
	}
	for i, c := range cases {
		got := shiftCols(c.in, 2, 1)
		if got.String() != c.want {
			t.Errorf("case %d: shiftCols = %q, want %q", i, got.String(), c.want)
		}
	}
}

func TestShiftColsPreservesSemantics(t *testing.T) {
	// A band predicate compiled against [l0, l1, r0, r1] must, after
	// shifting past an interposed column at position 2, read the same
	// values from [l0, l1, X, r0, r1].
	pred := algebra.Bin{Op: algebra.OpAnd,
		L: algebra.Bin{Op: algebra.OpLt, L: col(0), R: algebra.Bin{Op: algebra.OpAdd, L: col(2), R: algebra.Const{V: types.NewInt(10)}}},
		R: algebra.Bin{Op: algebra.OpGt, L: col(1), R: col(3)},
	}
	orig := []types.Value{types.NewInt(5), types.NewInt(9), types.NewInt(4), types.NewInt(7)}
	shifted := []types.Value{orig[0], orig[1], types.NewInt(999), orig[2], orig[3]}
	before := pred.Eval(orig)
	after := shiftCols(pred, 2, 1).Eval(shifted)
	if !before.Equal(after) {
		t.Errorf("semantics changed: %v vs %v", before, after)
	}
}
