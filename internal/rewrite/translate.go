package rewrite

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/kdb"
	"repro/internal/types"
)

// FromKDB translates an RA⁺ kdb query into a deterministic logical plan
// against the catalog's logical schemas, so experiments can run the same
// query through the K-relation evaluators (lineage, symbolic, K^W) and
// through the engine / UA rewriting without maintaining two query texts.
func FromKDB(q kdb.Query, schemas map[string]types.Schema) (algebra.Node, error) {
	switch n := q.(type) {
	case kdb.Table:
		s, ok := schemas[lower(n.Name)]
		if !ok {
			return nil, fmt.Errorf("rewrite: unknown table %q", n.Name)
		}
		return &algebra.Scan{Table: n.Name, TblSchema: s}, nil
	case kdb.SelectQ:
		in, err := FromKDB(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		pred, err := predToExpr(n.Pred, in.Schema())
		if err != nil {
			return nil, err
		}
		return &algebra.Filter{Input: in, Pred: pred}, nil
	case kdb.ProjectQ:
		in, err := FromKDB(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		schema := in.Schema()
		exprs := make([]algebra.Expr, len(n.Attrs))
		names := make([]string, len(n.Attrs))
		for i, a := range n.Attrs {
			j := schema.IndexOf(a)
			if j < 0 {
				return nil, fmt.Errorf("rewrite: unknown attribute %q", a)
			}
			exprs[i] = algebra.Col{Idx: j, Name: a}
			names[i] = a
		}
		return &algebra.Project{Input: in, Exprs: exprs, Names: names}, nil
	case kdb.JoinQ:
		l, err := FromKDB(n.Left, schemas)
		if err != nil {
			return nil, err
		}
		r, err := FromKDB(n.Right, schemas)
		if err != nil {
			return nil, err
		}
		join := &algebra.Join{Left: l, Right: r}
		if n.Pred != nil {
			// Peel a single top-level attribute equality into hash keys so
			// the engine mirrors what its SQL planner would produce.
			if aa, ok := n.Pred.(kdb.AttrAttr); ok && aa.Op == kdb.OpEq {
				lA := l.Schema().Arity()
				li, ri := aa.PosLeft, aa.PosRight
				if li < 0 {
					li = l.Schema().IndexOf(aa.Left)
				}
				if ri < 0 {
					ri = l.Schema().Concat(r.Schema()).IndexOf(aa.Right)
				}
				if li >= 0 && li < lA && ri >= lA {
					join.EquiL = []int{li}
					join.EquiR = []int{ri - lA}
					return join, nil
				}
			}
			pred, err := predToExpr(n.Pred, l.Schema().Concat(r.Schema()))
			if err != nil {
				return nil, err
			}
			join.Residual = pred
		}
		return join, nil
	case kdb.UnionQ:
		l, err := FromKDB(n.Left, schemas)
		if err != nil {
			return nil, err
		}
		r, err := FromKDB(n.Right, schemas)
		if err != nil {
			return nil, err
		}
		return &algebra.UnionAll{Left: l, Right: r}, nil
	case kdb.RenameQ:
		in, err := FromKDB(n.Input, schemas)
		if err != nil {
			return nil, err
		}
		schema := in.Schema()
		exprs := make([]algebra.Expr, schema.Arity())
		for i := range exprs {
			exprs[i] = algebra.Col{Idx: i, Name: n.Attrs[i]}
		}
		return &algebra.Project{Input: in, Exprs: exprs, Names: n.Attrs}, nil
	default:
		return nil, fmt.Errorf("rewrite: unsupported kdb node %T", q)
	}
}

func predToExpr(p kdb.Predicate, schema types.Schema) (algebra.Expr, error) {
	switch n := p.(type) {
	case kdb.TruePred:
		return algebra.Const{V: types.NewBool(true)}, nil
	case kdb.AttrConst:
		i := schema.IndexOf(n.Attr)
		if i < 0 {
			return nil, fmt.Errorf("rewrite: unknown attribute %q", n.Attr)
		}
		return algebra.Bin{Op: cmpToBin(n.Op), L: algebra.Col{Idx: i, Name: n.Attr}, R: algebra.Const{V: n.Const}}, nil
	case kdb.AttrAttr:
		li, ri := n.PosLeft, n.PosRight
		if li < 0 {
			li = schema.IndexOf(n.Left)
		}
		if ri < 0 {
			ri = schema.IndexOf(n.Right)
		}
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("rewrite: unknown attribute in %s", n)
		}
		return algebra.Bin{Op: cmpToBin(n.Op),
			L: algebra.Col{Idx: li, Name: n.Left}, R: algebra.Col{Idx: ri, Name: n.Right}}, nil
	case kdb.And:
		var out algebra.Expr
		for _, c := range n {
			e, err := predToExpr(c, schema)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = e
			} else {
				out = algebra.Bin{Op: algebra.OpAnd, L: out, R: e}
			}
		}
		if out == nil {
			out = algebra.Const{V: types.NewBool(true)}
		}
		return out, nil
	case kdb.Or:
		var out algebra.Expr
		for _, c := range n {
			e, err := predToExpr(c, schema)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = e
			} else {
				out = algebra.Bin{Op: algebra.OpOr, L: out, R: e}
			}
		}
		if out == nil {
			out = algebra.Const{V: types.NewBool(false)}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rewrite: unsupported predicate %T", p)
	}
}

func cmpToBin(op kdb.CmpOp) algebra.BinOp {
	switch op {
	case kdb.OpEq:
		return algebra.OpEq
	case kdb.OpNe:
		return algebra.OpNe
	case kdb.OpLt:
		return algebra.OpLt
	case kdb.OpLe:
		return algebra.OpLe
	case kdb.OpGt:
		return algebra.OpGt
	default:
		return algebra.OpGe
	}
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
