package pdbench

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/uadb"
)

// runDet plans and runs a SQL string against cat via engine.Session.
func runDet(cat *engine.Catalog, query string) (*engine.Table, error) {
	plan, err := engine.NewPlanner(cat).PlanSQL(query)
	if err != nil {
		return nil, err
	}
	res, err := engine.NewSession(cat, physical.Options{}).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

// runFront runs a UA-SQL query through the frontend, materialized.
func runFront(front *rewrite.Frontend, query string) (*engine.Table, error) {
	res, err := front.Query(context.Background(), query, front.Opts)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{SF: 0.01, Uncertainty: 0.05, Seed: 42}
	a := Generate(cfg)
	b := Generate(cfg)
	for name := range a.Tables {
		sa, sb := a.Stats()[name], b.Stats()[name]
		if sa != sb {
			t.Errorf("%s: generation not deterministic: %v vs %v", name, sa, sb)
		}
	}
}

func TestGenerateSizes(t *testing.T) {
	w := Generate(Config{SF: 0.01, Uncertainty: 0.02, Seed: 1})
	st := w.Stats()
	if st["customer"][0] < 10 {
		t.Error("customer too small")
	}
	if st["orders"][0] != st["customer"][0]*10 {
		t.Errorf("orders = %v, customers = %v", st["orders"], st["customer"])
	}
	if st["lineitem"][0] != st["orders"][0]*4 {
		t.Error("lineitem scale")
	}
	if st["region"][0] != 5 || st["nation"][0] != 8 {
		t.Error("dimension tables")
	}
	// Dimension tables are deterministic.
	if st["region"][1] != 0 || st["nation"][1] != 0 {
		t.Error("dimension tables must be certain")
	}
}

func TestUncertaintyRate(t *testing.T) {
	for _, u := range []float64{0.02, 0.30} {
		w := Generate(Config{SF: 0.05, Uncertainty: u, Seed: 3})
		st := w.Stats()
		li := st["lineitem"]
		rate := float64(li[1]) / float64(li[0])
		// Each lineitem has 4 mutable cells: P(row uncertain) = 1-(1-u)^4.
		want := 1 - (1-u)*(1-u)*(1-u)*(1-u)
		if rate < want*0.6 || rate > want*1.4 {
			t.Errorf("u=%.2f: uncertain-row rate %.3f, want ≈ %.3f", u, rate, want)
		}
	}
}

func TestAlternativesBounded(t *testing.T) {
	w := Generate(Config{SF: 0.02, Uncertainty: 0.30, Seed: 5})
	for name, rel := range w.Tables {
		for _, x := range rel.XTuples {
			if len(x.Alts) < 1 || len(x.Alts) > MaxAlternatives {
				t.Fatalf("%s: x-tuple with %d alternatives", name, len(x.Alts))
			}
			// The first alternative is the clean generation: all x-tuples
			// carry valid probabilities summing to ~1.
			total := x.TotalProb()
			if total < 0.99 || total > 1.01 {
				t.Fatalf("%s: alternative probabilities sum to %f", name, total)
			}
		}
	}
}

func TestQueriesRunOnAllPaths(t *testing.T) {
	w := Generate(Config{SF: 0.01, Uncertainty: 0.10, Seed: 7})
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range w.Tables {
		uaDB.Put(uadb.FromXDB(x))
	}
	detCat := rewrite.DetCatalog(uaDB)
	front := rewrite.NewFrontend(rewrite.EncodeUADatabase(uaDB))
	for _, q := range Queries() {
		detRes, err := runDet(detCat, q.SQL)
		if err != nil {
			t.Fatalf("%s SQL on engine: %v", q.Name, err)
		}
		uaRes, err := runFront(front, q.SQL)
		if err != nil {
			t.Fatalf("%s SQL on UA frontend: %v", q.Name, err)
		}
		if uaRes.NumRows() != detRes.NumRows() {
			t.Errorf("%s: UA rows %d != det rows %d", q.Name, uaRes.NumRows(), detRes.NumRows())
		}
		// The RA form must agree with the SQL form on the deterministic
		// database (modulo the label column).
		kdbDB := kdb.NewDatabase[int64](semiring.Nat)
		for _, x := range w.Tables {
			kdbDB.Put(rewrite.RelationFromTable(detCat.Get(x.Schema.Name)))
		}
		raRes, err := kdb.Eval(q.RA, kdbDB)
		if err != nil {
			t.Fatalf("%s RA: %v", q.Name, err)
		}
		detRel := rewrite.RelationFromTable(detRes)
		if !detRel.Equal(kdb.Rename(raRes, detRel.Schema())) {
			t.Errorf("%s: RA and SQL forms disagree", q.Name)
		}
	}
}

func TestWorkloadString(t *testing.T) {
	w := Generate(Config{SF: 0.01, Uncertainty: 0.02, Seed: 1})
	if w.String() == "" {
		t.Error("empty description")
	}
}
