// Package pdbench is a PDBench-style workload generator (Antova, Jansen,
// Koch, Olteanu; ICDE 2008): a scaled-down TPC-H subset with seeded random
// uncertainty injected into attribute cells, producing x-DBs whose x-tuples
// carry up to MaxAlternatives alternatives per uncertain row. The three
// benchmark queries roughly correspond to TPC-H Q3, Q6 and Q7, matching the
// paper's Section 11.1 setup.
//
// Scale: SF = 1 generates 1,500 customers / 15,000 orders / 60,000 lineitems
// (1/100 of TPC-H dbgen row counts) so the whole benchmark suite runs on one
// core in seconds; relative comparisons between systems are unaffected (see
// DESIGN.md).
package pdbench

import (
	"fmt"
	"math/rand"

	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/types"
)

// MaxAlternatives bounds the alternatives per uncertain cell, matching
// PDBench's "up to 8 possible values".
const MaxAlternatives = 8

// Config controls generation.
type Config struct {
	SF          float64 // scale factor; 1.0 = 60k lineitems
	Uncertainty float64 // fraction of cells made uncertain (0.02 .. 0.30)
	Seed        int64
}

// Workload is the generated database in x-DB form plus derived metadata.
type Workload struct {
	Config Config
	Tables map[string]*models.XRelation
}

var mktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var nations = []string{"FRANCE", "GERMANY", "RUSSIA", "JAPAN", "CHINA", "KENYA", "PERU", "BRAZIL"}
var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
var statuses = []string{"O", "F", "P"}

func iv(v int64) types.Value   { return types.NewInt(v) }
func fv(v float64) types.Value { return types.NewFloat(v) }
func sv(v string) types.Value  { return types.NewString(v) }

// Generate builds the workload deterministically from the seed.
func Generate(cfg Config) *Workload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Config: cfg, Tables: make(map[string]*models.XRelation)}

	nCust := int(1500 * cfg.SF)
	if nCust < 10 {
		nCust = 10
	}
	nOrders := nCust * 10
	nLines := nOrders * 4

	region := models.NewXRelation(types.NewSchema("region", "r_regionkey", "r_name"))
	for i, name := range regions {
		region.AddCertain(types.Tuple{iv(int64(i)), sv(name)})
	}
	w.Tables["region"] = region

	nation := models.NewXRelation(types.NewSchema("nation", "n_nationkey", "n_name", "n_regionkey"))
	for i, name := range nations {
		nation.AddCertain(types.Tuple{iv(int64(i)), sv(name), iv(int64(i % len(regions)))})
	}
	w.Tables["nation"] = nation

	// customer: c_custkey, c_nationkey, c_acctbal, c_mktsegment.
	custSchema := types.NewSchema("customer", "c_custkey", "c_nationkey", "c_acctbal", "c_mktsegment")
	customer := models.NewXRelation(custSchema)
	custGen := cellGenerators{
		1: func(r *rand.Rand) types.Value { return iv(r.Int63n(int64(len(nations)))) },
		2: func(r *rand.Rand) types.Value { return fv(float64(r.Intn(10000)) - 999) },
		3: func(r *rand.Rand) types.Value { return sv(mktSegments[r.Intn(len(mktSegments))]) },
	}
	for i := 0; i < nCust; i++ {
		row := types.Tuple{
			iv(int64(i + 1)),
			custGen[1](rng), custGen[2](rng), custGen[3](rng),
		}
		addRow(customer, row, custGen, cfg, rng)
	}
	w.Tables["customer"] = customer

	// orders: o_orderkey, o_custkey, o_orderstatus, o_totalprice,
	// o_orderdate (int days), o_shippriority.
	ordSchema := types.NewSchema("orders",
		"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_shippriority")
	orders := models.NewXRelation(ordSchema)
	ordGen := cellGenerators{
		1: func(r *rand.Rand) types.Value { return iv(r.Int63n(int64(nCust)) + 1) },
		2: func(r *rand.Rand) types.Value { return sv(statuses[r.Intn(len(statuses))]) },
		3: func(r *rand.Rand) types.Value { return fv(float64(r.Intn(500000)) / 100 * 10) },
		4: func(r *rand.Rand) types.Value { return iv(r.Int63n(2406)) }, // days over ~6.5 years
		5: func(r *rand.Rand) types.Value { return iv(r.Int63n(2)) },
	}
	for i := 0; i < nOrders; i++ {
		row := types.Tuple{
			iv(int64(i + 1)),
			ordGen[1](rng), ordGen[2](rng), ordGen[3](rng), ordGen[4](rng), ordGen[5](rng),
		}
		addRow(orders, row, ordGen, cfg, rng)
	}
	w.Tables["orders"] = orders

	// lineitem: l_orderkey, l_linenumber, l_quantity, l_extendedprice,
	// l_discount, l_shipdate.
	liSchema := types.NewSchema("lineitem",
		"l_orderkey", "l_linenumber", "l_quantity", "l_extendedprice", "l_discount", "l_shipdate")
	lineitem := models.NewXRelation(liSchema)
	liGen := cellGenerators{
		2: func(r *rand.Rand) types.Value { return iv(r.Int63n(50) + 1) },
		3: func(r *rand.Rand) types.Value { return fv(float64(r.Intn(100000)) / 100) },
		4: func(r *rand.Rand) types.Value { return fv(float64(r.Intn(11)) / 100) },
		5: func(r *rand.Rand) types.Value { return iv(r.Int63n(2406)) },
	}
	for i := 0; i < nLines; i++ {
		row := types.Tuple{
			iv(rng.Int63n(int64(nOrders)) + 1),
			iv(int64(i%7 + 1)),
			liGen[2](rng), liGen[3](rng), liGen[4](rng), liGen[5](rng),
		}
		addRow(lineitem, row, liGen, cfg, rng)
	}
	w.Tables["lineitem"] = lineitem

	return w
}

// cellGenerators maps column positions eligible for uncertainty to their
// value generators (keys are never made uncertain, matching PDBench).
type cellGenerators map[int]func(*rand.Rand) types.Value

// addRow injects uncertainty: with probability proportional to the cell
// uncertainty rate, a row becomes an x-tuple whose alternatives redraw each
// uncertain cell. The original row stays the first alternative, so the
// best-guess world is the clean generation.
func addRow(rel *models.XRelation, row types.Tuple, gens cellGenerators, cfg Config, rng *rand.Rand) {
	var dirty []int
	for col := range gens {
		if rng.Float64() < cfg.Uncertainty {
			dirty = append(dirty, col)
		}
	}
	if len(dirty) == 0 {
		rel.AddCertain(row)
		return
	}
	nAlts := rng.Intn(MaxAlternatives-1) + 2 // 2..8 alternatives
	alts := make([]models.Alternative, 0, nAlts)
	alts = append(alts, models.Alternative{Data: row, Prob: 1 / float64(nAlts)})
	for a := 1; a < nAlts; a++ {
		alt := row.Clone()
		for _, col := range dirty {
			alt[col] = gens[col](rng)
		}
		alts = append(alts, models.Alternative{Data: alt, Prob: 1 / float64(nAlts)})
	}
	rel.Add(models.XTuple{Alts: alts})
}

// Stats summarizes the generated uncertainty.
func (w *Workload) Stats() map[string][2]int {
	out := make(map[string][2]int)
	for name, rel := range w.Tables {
		uncertain := 0
		for _, x := range rel.XTuples {
			if len(x.Alts) > 1 || x.Optional {
				uncertain++
			}
		}
		out[name] = [2]int{len(rel.XTuples), uncertain}
	}
	return out
}

// Query pairs the SQL form (run on the engine and the UA frontend) with the
// equivalent RA⁺ form (run on lineage / symbolic evaluators).
type Query struct {
	Name string
	SQL  string
	RA   kdb.Query
}

// Queries returns the three PDBench benchmark queries. Date constants index
// days; the midpoint of the generated range keeps selectivities moderate.
func Queries() []Query {
	q1SQL := `SELECT o.o_orderkey, o.o_orderdate, o.o_shippriority
		FROM customer c, orders o, lineitem l
		WHERE c.c_mktsegment = 'BUILDING'
		  AND c.c_custkey = o.o_custkey
		  AND l.l_orderkey = o.o_orderkey
		  AND o.o_orderdate < 1200
		  AND l.l_shipdate > 1200`
	q1RA := kdb.ProjectQ{
		Input: kdb.SelectQ{
			Input: kdb.JoinQ{
				Left: kdb.JoinQ{
					Left: kdb.Table{Name: "customer"}, Right: kdb.Table{Name: "orders"},
					Pred: kdb.AttrAttr{Left: "c_custkey", Right: "o_custkey", PosLeft: -1, PosRight: -1, Op: kdb.OpEq},
				},
				Right: kdb.Table{Name: "lineitem"},
				Pred:  kdb.AttrAttr{Left: "o_orderkey", Right: "l_orderkey", PosLeft: -1, PosRight: -1, Op: kdb.OpEq},
			},
			Pred: kdb.And{
				kdb.AttrConst{Attr: "c_mktsegment", Op: kdb.OpEq, Const: sv("BUILDING")},
				kdb.AttrConst{Attr: "o_orderdate", Op: kdb.OpLt, Const: iv(1200)},
				kdb.AttrConst{Attr: "l_shipdate", Op: kdb.OpGt, Const: iv(1200)},
			},
		},
		Attrs: []string{"o_orderkey", "o_orderdate", "o_shippriority"},
	}

	q2SQL := `SELECT l_orderkey, l_extendedprice, l_discount
		FROM lineitem
		WHERE l_shipdate >= 800 AND l_shipdate < 1200
		  AND l_discount BETWEEN 0.05 AND 0.07
		  AND l_quantity < 24`
	q2RA := kdb.ProjectQ{
		Input: kdb.SelectQ{
			Input: kdb.Table{Name: "lineitem"},
			Pred: kdb.And{
				kdb.AttrConst{Attr: "l_shipdate", Op: kdb.OpGe, Const: iv(800)},
				kdb.AttrConst{Attr: "l_shipdate", Op: kdb.OpLt, Const: iv(1200)},
				kdb.AttrConst{Attr: "l_discount", Op: kdb.OpGe, Const: fv(0.05)},
				kdb.AttrConst{Attr: "l_discount", Op: kdb.OpLe, Const: fv(0.07)},
				kdb.AttrConst{Attr: "l_quantity", Op: kdb.OpLt, Const: iv(24)},
			},
		},
		Attrs: []string{"l_orderkey", "l_extendedprice", "l_discount"},
	}

	q3SQL := `SELECT n.n_name, o.o_orderkey
		FROM customer c, orders o, nation n
		WHERE c.c_custkey = o.o_custkey
		  AND c.c_nationkey = n.n_nationkey
		  AND (n.n_name = 'FRANCE' OR n.n_name = 'GERMANY')
		  AND o.o_orderdate BETWEEN 800 AND 1600`
	q3RA := kdb.ProjectQ{
		Input: kdb.SelectQ{
			Input: kdb.JoinQ{
				Left: kdb.JoinQ{
					Left: kdb.Table{Name: "customer"}, Right: kdb.Table{Name: "orders"},
					Pred: kdb.AttrAttr{Left: "c_custkey", Right: "o_custkey", PosLeft: -1, PosRight: -1, Op: kdb.OpEq},
				},
				Right: kdb.Table{Name: "nation"},
				Pred:  kdb.AttrAttr{Left: "c_nationkey", Right: "n_nationkey", PosLeft: -1, PosRight: -1, Op: kdb.OpEq},
			},
			Pred: kdb.And{
				kdb.Or{
					kdb.AttrConst{Attr: "n_name", Op: kdb.OpEq, Const: sv("FRANCE")},
					kdb.AttrConst{Attr: "n_name", Op: kdb.OpEq, Const: sv("GERMANY")},
				},
				kdb.AttrConst{Attr: "o_orderdate", Op: kdb.OpGe, Const: iv(800)},
				kdb.AttrConst{Attr: "o_orderdate", Op: kdb.OpLe, Const: iv(1600)},
			},
		},
		Attrs: []string{"n_name", "o_orderkey"},
	}

	return []Query{
		{Name: "Q1", SQL: q1SQL, RA: q1RA},
		{Name: "Q2", SQL: q2SQL, RA: q2RA},
		{Name: "Q3", SQL: q3SQL, RA: q3RA},
	}
}

// String describes the workload.
func (w *Workload) String() string {
	return fmt.Sprintf("pdbench SF=%.2f u=%.0f%% seed=%d", w.Config.SF, w.Config.Uncertainty*100, w.Config.Seed)
}
