package cond

import (
	"repro/internal/types"
)

// This file implements the exact tautology / satisfiability solver that
// substitutes for Z3 in the Figure 10 baseline (exact certain answers over
// C-tables). The solver enumerates valuations over a representative finite
// domain.
//
// Completeness argument: the truth of every atom in our condition language
// depends only on (a) which "region" each variable occupies relative to the
// constants mentioned in the formula (below the least constant, equal to a
// constant, between two adjacent constants, above the greatest), and (b)
// equality/order relationships between variables that share a region. A
// domain that contains every mentioned constant plus n distinct fresh values
// strictly inside every gap (n = number of variables) can realize every such
// region/ordering combination, so a formula holds over all valuations into
// the infinite domain iff it holds over all valuations into the
// representative domain.

// Domain builds the representative domain for e given at most maxVars
// variables (pass len(Vars(e)) or more). Constants of non-numeric kinds are
// included as-is with fresh string values standing in for "anything else".
func Domain(e Expr, nVars int) []types.Value {
	if nVars < 1 {
		nVars = 1
	}
	consts := Constants(e)
	var nums []float64
	hasString := false
	for _, c := range consts {
		switch c.Kind() {
		case types.KindInt, types.KindFloat:
			nums = append(nums, c.Float())
		case types.KindString:
			hasString = true
		}
	}
	out := append([]types.Value(nil), consts...)
	// Fresh numeric points: below min, inside every gap, above max.
	if len(nums) > 0 {
		addRange := func(lo, hi float64) {
			step := (hi - lo) / float64(nVars+1)
			for i := 1; i <= nVars; i++ {
				out = append(out, types.NewFloat(lo+step*float64(i)))
			}
		}
		addRange(nums[0]-float64(nVars)-1, nums[0])
		for i := 0; i+1 < len(nums); i++ {
			if nums[i+1] > nums[i] {
				addRange(nums[i], nums[i+1])
			}
		}
		addRange(nums[len(nums)-1], nums[len(nums)-1]+float64(nVars)+1)
	} else {
		for i := 0; i < nVars; i++ {
			out = append(out, types.NewFloat(float64(i)))
		}
	}
	if hasString {
		for i := 0; i < nVars; i++ {
			out = append(out, types.NewString(string(rune(''+i)))) // private-use: fresh
		}
	}
	return out
}

// forAllValuations reports whether pred holds for every valuation of vars
// into domain.
func forAllValuations(vars []string, domain []types.Value, pred func(Valuation) bool) bool {
	v := make(Valuation, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return pred(v)
		}
		for _, d := range domain {
			v[vars[i]] = d
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// Tautology reports whether e holds under every valuation (exact, via
// active-domain enumeration — exponential in the number of variables).
func Tautology(e Expr) bool {
	vars := Vars(e)
	if len(vars) == 0 {
		return Eval(e, nil)
	}
	return forAllValuations(vars, Domain(e, len(vars)), func(v Valuation) bool {
		return Eval(e, v)
	})
}

// Satisfiable reports whether some valuation makes e true (exact, same
// enumeration).
func Satisfiable(e Expr) bool {
	vars := Vars(e)
	if len(vars) == 0 {
		return Eval(e, nil)
	}
	return !forAllValuations(vars, Domain(e, len(vars)), func(v Valuation) bool {
		return !Eval(e, v)
	})
}

// Equivalent reports whether a and b agree under every valuation of their
// combined variables.
func Equivalent(a, b Expr) bool {
	combined := And{Or{a, Not{b}}, Or{b, Not{a}}}
	return Tautology(combined)
}

// Simplify performs shallow constant folding: ground atoms become literals,
// TRUE/FALSE absorb in AND/OR, double negation cancels. It preserves
// equivalence and keeps conditions small as queries stack operators.
func Simplify(e Expr) Expr {
	switch n := e.(type) {
	case Atom:
		if !n.L.IsVar() && !n.R.IsVar() {
			return Lit(n.Op.Apply(n.L.Const, n.R.Const))
		}
		return n
	case Lit:
		return n
	case Not:
		inner := Simplify(n.E)
		switch in := inner.(type) {
		case Lit:
			return Lit(!in)
		case Not:
			return in.E
		case Atom:
			// Push negation into the comparison.
			return Atom{L: in.L, Op: in.Op.Negate(), R: in.R}
		default:
			return Not{E: inner}
		}
	case And:
		var out And
		for _, c := range n {
			s := Simplify(c)
			switch sc := s.(type) {
			case Lit:
				if !sc {
					return Lit(false)
				}
				continue
			case And:
				out = append(out, sc...)
			default:
				out = append(out, s)
			}
		}
		switch len(out) {
		case 0:
			return Lit(true)
		case 1:
			return out[0]
		default:
			return out
		}
	case Or:
		var out Or
		for _, c := range n {
			s := Simplify(c)
			switch sc := s.(type) {
			case Lit:
				if sc {
					return Lit(true)
				}
				continue
			case Or:
				out = append(out, sc...)
			default:
				out = append(out, s)
			}
		}
		switch len(out) {
		case 0:
			return Lit(false)
		case 1:
			return out[0]
		default:
			return out
		}
	}
	return e
}

// Size counts atoms and connectives, a proxy for condition complexity used
// by the Figure 10 experiment.
func Size(e Expr) int {
	switch n := e.(type) {
	case Atom, Lit:
		return 1
	case Not:
		return 1 + Size(n.E)
	case And:
		s := 1
		for _, c := range n {
			s += Size(c)
		}
		return s
	case Or:
		s := 1
		for _, c := range n {
			s += Size(c)
		}
		return s
	}
	return 0
}
