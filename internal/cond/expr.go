// Package cond implements the boolean condition language of C-tables
// (Imielinski & Lipski): comparisons over variables and constants combined
// with ∧, ∨, ¬. It provides evaluation under valuations, CNF detection and
// the PTIME CNF-tautology test that powers the paper's c-sound C-table
// labeling scheme (Section 4), plus an exact active-domain tautology /
// satisfiability solver that substitutes for the Z3 baseline used in the
// paper's Figure 10 experiment.
package cond

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// Op enumerates comparison operators of the condition language.
type Op uint8

// The comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o Op) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Negate returns the complementary operator (¬(a < b) ⇔ a >= b, etc.).
func (o Op) Negate() Op {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	panic("cond: bad op")
}

// Flip returns the operator with swapped operands (a < b ⇔ b > a).
func (o Op) Flip() Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return o
	}
}

// Apply evaluates the comparison on concrete values using the total order of
// types.Value.
func (o Op) Apply(a, b types.Value) bool {
	c := a.Compare(b)
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}

// Term is an operand of a comparison: a variable or a constant.
type Term struct {
	Var   string      // non-empty for variables
	Const types.Value // used when Var == ""
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v types.Value) Term { return Term{Const: v} }

// CI returns an integer constant term.
func CI(v int64) Term { return C(types.NewInt(v)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	if t.Const.Kind() == types.KindString {
		return fmt.Sprintf("'%s'", t.Const)
	}
	return t.Const.String()
}

// Expr is a boolean condition.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Atom is a comparison between two terms.
type Atom struct {
	L  Term
	Op Op
	R  Term
}

// Cmp builds an atom.
func Cmp(l Term, op Op, r Term) Atom { return Atom{L: l, Op: op, R: r} }

// And is a conjunction (empty = true).
type And []Expr

// Or is a disjunction (empty = false).
type Or []Expr

// Not negates a condition.
type Not struct{ E Expr }

// Lit is a boolean literal.
type Lit bool

func (Atom) exprNode() {}
func (And) exprNode()  {}
func (Or) exprNode()   {}
func (Not) exprNode()  {}
func (Lit) exprNode()  {}

// String renders the atom.
func (a Atom) String() string { return fmt.Sprintf("%s %s %s", a.L, a.Op, a.R) }

// String renders the conjunction.
func (e And) String() string { return joinExprs([]Expr(e), " AND ", "TRUE") }

// String renders the disjunction.
func (e Or) String() string { return joinExprs([]Expr(e), " OR ", "FALSE") }

// String renders the negation.
func (e Not) String() string { return fmt.Sprintf("NOT (%s)", e.E) }

// String renders the literal.
func (e Lit) String() string {
	if e {
		return "TRUE"
	}
	return "FALSE"
}

func joinExprs(es []Expr, sep, empty string) string {
	if len(es) == 0 {
		return empty
	}
	parts := make([]string, len(es))
	for i, e := range es {
		if _, ok := e.(Atom); ok {
			parts[i] = e.String()
		} else if _, ok := e.(Lit); ok {
			parts[i] = e.String()
		} else {
			parts[i] = "(" + e.String() + ")"
		}
	}
	return strings.Join(parts, sep)
}

// Valuation assigns constants to variables.
type Valuation map[string]types.Value

// Eval evaluates e under the valuation v. Unbound variables panic: C-table
// semantics always evaluates conditions under total valuations.
func Eval(e Expr, v Valuation) bool {
	switch n := e.(type) {
	case Atom:
		return n.Op.Apply(termValue(n.L, v), termValue(n.R, v))
	case And:
		for _, c := range n {
			if !Eval(c, v) {
				return false
			}
		}
		return true
	case Or:
		for _, c := range n {
			if Eval(c, v) {
				return true
			}
		}
		return false
	case Not:
		return !Eval(n.E, v)
	case Lit:
		return bool(n)
	}
	panic(fmt.Sprintf("cond: unknown expr %T", e))
}

func termValue(t Term, v Valuation) types.Value {
	if !t.IsVar() {
		return t.Const
	}
	val, ok := v[t.Var]
	if !ok {
		panic(fmt.Sprintf("cond: unbound variable %q", t.Var))
	}
	return val
}

// Vars returns the sorted set of variables occurring in e.
func Vars(e Expr) []string {
	set := make(map[string]bool)
	collectVars(e, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectVars(e Expr, set map[string]bool) {
	switch n := e.(type) {
	case Atom:
		if n.L.IsVar() {
			set[n.L.Var] = true
		}
		if n.R.IsVar() {
			set[n.R.Var] = true
		}
	case And:
		for _, c := range n {
			collectVars(c, set)
		}
	case Or:
		for _, c := range n {
			collectVars(c, set)
		}
	case Not:
		collectVars(n.E, set)
	case Lit:
	}
}

// Constants returns the sorted set of constants occurring in e.
func Constants(e Expr) []types.Value {
	set := make(map[string]types.Value)
	collectConsts(e, set)
	out := make([]types.Value, 0, len(set))
	for _, v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

func collectConsts(e Expr, set map[string]types.Value) {
	switch n := e.(type) {
	case Atom:
		for _, t := range []Term{n.L, n.R} {
			if !t.IsVar() {
				set[types.Tuple{t.Const}.Key()] = t.Const
			}
		}
	case And:
		for _, c := range n {
			collectConsts(c, set)
		}
	case Or:
		for _, c := range n {
			collectConsts(c, set)
		}
	case Not:
		collectConsts(n.E, set)
	case Lit:
	}
}
