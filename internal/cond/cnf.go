package cond

import "repro/internal/types"

// This file implements the syntactic CNF machinery behind the paper's
// c-sound C-table labeling scheme (Section 4): a tuple is labeled certain iff
// its local condition is in conjunctive normal form AND that CNF is a
// tautology, a check that is PTIME and sufficient (but not necessary) for
// certainty.

// literal is an atom or its negation in a clause.
type literal struct {
	neg  bool
	atom Atom
}

// IsCNF reports whether e is syntactically in conjunctive normal form: a
// literal, a clause (disjunction of literals), or a conjunction of clauses.
// Boolean literals TRUE/FALSE count as trivial clauses.
func IsCNF(e Expr) bool {
	switch n := e.(type) {
	case Atom, Lit:
		return true
	case Not:
		return isLiteral(n)
	case Or:
		return isClause(n)
	case And:
		for _, c := range n {
			switch cc := c.(type) {
			case Atom, Lit:
			case Not:
				if !isLiteral(cc) {
					return false
				}
			case Or:
				if !isClause(cc) {
					return false
				}
			default:
				return false
			}
		}
		return true
	default:
		return false
	}
}

func isLiteral(e Expr) bool {
	switch n := e.(type) {
	case Atom, Lit:
		return true
	case Not:
		_, ok := n.E.(Atom)
		if !ok {
			_, ok = n.E.(Lit)
		}
		return ok
	default:
		return false
	}
}

func isClause(e Or) bool {
	for _, c := range e {
		if !isLiteral(c) {
			return false
		}
	}
	return true
}

// clauses decomposes a CNF expression into clauses of literals. It must only
// be called when IsCNF(e) holds.
func clauses(e Expr) [][]literal {
	switch n := e.(type) {
	case Atom:
		return [][]literal{{{atom: n}}}
	case Lit:
		if n {
			return nil // TRUE: no clauses
		}
		return [][]literal{{}} // FALSE: one empty clause
	case Not:
		return [][]literal{flatLiteral(n)}
	case Or:
		return [][]literal{clauseLits(n)}
	case And:
		var out [][]literal
		for _, c := range n {
			out = append(out, clauses(c)...)
		}
		return out
	}
	panic("cond: clauses on non-CNF expression")
}

func flatLiteral(e Expr) []literal {
	switch n := e.(type) {
	case Atom:
		return []literal{{atom: n}}
	case Lit:
		if n {
			return nil // TRUE literal: clause is a tautology, signal with nil
		}
		return []literal{} // FALSE literal contributes nothing
	case Not:
		inner := flatLiteral(n.E)
		if inner == nil {
			return []literal{} // NOT TRUE = FALSE
		}
		if len(inner) == 0 {
			return nil // NOT FALSE = TRUE
		}
		l := inner[0]
		l.neg = !l.neg
		return []literal{l}
	}
	panic("cond: not a literal")
}

func clauseLits(e Or) []literal {
	var out []literal
	for _, c := range e {
		ls := flatLiteral(c)
		if ls == nil {
			return nil // clause contains TRUE
		}
		out = append(out, ls...)
	}
	return out
}

// CNFTautology reports whether a CNF condition is a tautology, in PTIME.
// A CNF is a tautology iff every clause is a tautology. A clause (a
// disjunction of comparison literals) is recognized as a tautology when it
// contains:
//
//   - a ground literal that evaluates to true (e.g. 1 = 1),
//   - a complementary pair over identical operands (x < y and x >= y,
//     or a literal and its negation),
//   - two ≠-literals on the same variable with distinct constants
//     (x ≠ 1 ∨ x ≠ 2 holds for every x), or
//   - a pair of order literals on the same variable whose ranges cover the
//     line (x < c1 ∨ x > c2 with c2 < c1, and ≤/≥ variants).
//
// The check is sound and complete for propositional structure, and sound
// (complete enough for the paper's workloads) for the ordered-domain cases.
// It returns false for non-CNF input, mirroring labelC-table.
func CNFTautology(e Expr) bool {
	if !IsCNF(e) {
		return false
	}
	for _, cl := range clauses(e) {
		if cl == nil {
			continue // clause containing TRUE
		}
		if !clauseTautology(cl) {
			return false
		}
	}
	return true
}

func clauseTautology(cl []literal) bool {
	norm := make([]literal, 0, len(cl))
	for _, l := range cl {
		// Fold negation into the operator and flip constant-first atoms so
		// variables come first where possible.
		a := l.atom
		op := a.Op
		if l.neg {
			op = op.Negate()
		}
		if !a.L.IsVar() && a.R.IsVar() {
			a.L, a.R = a.R, a.L
			op = op.Flip()
		}
		a.Op = op
		// Ground literal: evaluate directly.
		if !a.L.IsVar() && !a.R.IsVar() {
			if op.Apply(a.L.Const, a.R.Const) {
				return true
			}
			continue // ground false literal contributes nothing
		}
		norm = append(norm, literal{atom: a})
	}
	for i := 0; i < len(norm); i++ {
		for j := i + 1; j < len(norm); j++ {
			if complementary(norm[i].atom, norm[j].atom) {
				return true
			}
		}
	}
	return false
}

func sameOperands(a, b Atom) bool {
	return a.L.IsVar() == b.L.IsVar() && a.R.IsVar() == b.R.IsVar() &&
		a.L.Var == b.L.Var && a.R.Var == b.R.Var &&
		(a.L.IsVar() || a.L.Const.Equal(b.L.Const)) &&
		(a.R.IsVar() || a.R.Const.Equal(b.R.Const))
}

func complementary(a, b Atom) bool {
	// Same operands, complementary operators (possibly after flipping b).
	if sameOperands(a, b) && (a.Op == b.Op.Negate() || coveringOps(a.Op, b.Op)) {
		return true
	}
	bf := Atom{L: b.R, Op: b.Op.Flip(), R: b.L}
	if sameOperands(a, bf) && (a.Op == bf.Op.Negate() || coveringOps(a.Op, bf.Op)) {
		return true
	}
	// var-vs-constant special cases on the same variable.
	if a.L.IsVar() && !a.R.IsVar() && b.L.IsVar() && !b.R.IsVar() && a.L.Var == b.L.Var {
		c1, c2 := a.R.Const, b.R.Const
		switch {
		// x ≠ c1 ∨ x ≠ c2 with c1 ≠ c2.
		case a.Op == OpNe && b.Op == OpNe && !c1.Equal(c2):
			return true
		// x < c1 ∨ x > c2 with c2 < c1 (and inclusive variants).
		case isLess(a.Op) && isGreater(b.Op) && coversLine(a.Op, c1, b.Op, c2):
			return true
		case isGreater(a.Op) && isLess(b.Op) && coversLine(b.Op, c2, a.Op, c1):
			return true
		// x ≠ c1 ∨ x < c2 with c1 < c2; x ≠ c1 ∨ x > c2 with c1 > c2.
		case a.Op == OpNe && isLess(b.Op) && c1.Compare(c2) < 0:
			return true
		case a.Op == OpNe && isGreater(b.Op) && c1.Compare(c2) > 0:
			return true
		case b.Op == OpNe && isLess(a.Op) && c2.Compare(c1) < 0:
			return true
		case b.Op == OpNe && isGreater(a.Op) && c2.Compare(c1) > 0:
			return true
		}
	}
	return false
}

// coveringOps reports pairs over identical operands whose union is total:
// ≤ with ≥, and = with ≠ handled by Negate; ≤ paired with > etc. also by
// Negate. The remaining identical-operand total pair is (≤, ≥).
func coveringOps(a, b Op) bool {
	return (a == OpLe && b == OpGe) || (a == OpGe && b == OpLe)
}

func isLess(o Op) bool    { return o == OpLt || o == OpLe }
func isGreater(o Op) bool { return o == OpGt || o == OpGe }

// coversLine reports whether (x lessOp cLess) ∨ (x greaterOp cGreater)
// covers every x.
func coversLine(lessOp Op, cLess types.Value, greaterOp Op, cGreater types.Value) bool {
	c := cGreater.Compare(cLess)
	if c < 0 {
		return true // strict gap on the constant side is fine: ranges overlap
	}
	if c == 0 {
		// x < c ∨ x > c misses x = c; any inclusive side closes the gap.
		return lessOp == OpLe || greaterOp == OpGe
	}
	return false
}
