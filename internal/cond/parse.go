package cond

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/types"
)

// Parse parses a condition string such as
//
//	X = 1 AND (Y < 2.5 OR X <> Z) AND NOT (W >= 'abc')
//
// Identifiers are variables, quoted strings and numbers are constants, TRUE
// and FALSE are literals. Operator precedence is NOT > AND > OR. This is the
// surface syntax for local conditions when loading C-tables from CSV or SQL.
func Parse(s string) (Expr, error) {
	p := &condParser{input: s}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tkEOF {
		return nil, fmt.Errorf("cond: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for tests and literals in code.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type condTokenKind uint8

const (
	tkEOF condTokenKind = iota
	tkIdent
	tkNumber
	tkString
	tkOp // = <> < <= > >= != (normalized to <>)
	tkLParen
	tkRParen
)

type condToken struct {
	kind condTokenKind
	text string
	pos  int
}

type condParser struct {
	input string
	pos   int
	tok   condToken
}

func (p *condParser) next() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = condToken{kind: tkEOF, pos: start}
		return
	}
	c := p.input[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = condToken{kind: tkLParen, text: "(", pos: start}
	case c == ')':
		p.pos++
		p.tok = condToken{kind: tkRParen, text: ")", pos: start}
	case c == '\'':
		p.pos++
		var sb strings.Builder
		for p.pos < len(p.input) && p.input[p.pos] != '\'' {
			sb.WriteByte(p.input[p.pos])
			p.pos++
		}
		p.pos++ // closing quote
		p.tok = condToken{kind: tkString, text: sb.String(), pos: start}
	case strings.ContainsRune("=<>!", rune(c)):
		op := string(c)
		p.pos++
		if p.pos < len(p.input) && strings.ContainsRune("=>", rune(p.input[p.pos])) {
			op += string(p.input[p.pos])
			p.pos++
		}
		if op == "!=" {
			op = "<>"
		}
		p.tok = condToken{kind: tkOp, text: op, pos: start}
	case c == '-' || c == '.' || (c >= '0' && c <= '9'):
		for p.pos < len(p.input) && (p.input[p.pos] == '-' || p.input[p.pos] == '.' ||
			p.input[p.pos] == 'e' || p.input[p.pos] == 'E' ||
			(p.input[p.pos] >= '0' && p.input[p.pos] <= '9')) {
			p.pos++
		}
		p.tok = condToken{kind: tkNumber, text: p.input[start:p.pos], pos: start}
	default:
		for p.pos < len(p.input) && (p.input[p.pos] == '_' ||
			unicode.IsLetter(rune(p.input[p.pos])) || unicode.IsDigit(rune(p.input[p.pos]))) {
			p.pos++
		}
		if p.pos == start {
			p.tok = condToken{kind: tkEOF, text: string(c), pos: start}
			return
		}
		p.tok = condToken{kind: tkIdent, text: p.input[start:p.pos], pos: start}
	}
}

func (p *condParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := Or{left}
	for p.tok.kind == tkIdent && strings.EqualFold(p.tok.text, "OR") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return terms, nil
}

func (p *condParser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := And{left}
	for p.tok.kind == tkIdent && strings.EqualFold(p.tok.text, "AND") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return terms, nil
}

func (p *condParser) parseUnary() (Expr, error) {
	if p.tok.kind == tkIdent && strings.EqualFold(p.tok.text, "NOT") {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{E: inner}, nil
	}
	if p.tok.kind == tkLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tkRParen {
			return nil, fmt.Errorf("cond: expected ) at offset %d", p.tok.pos)
		}
		p.next()
		return inner, nil
	}
	return p.parseAtom()
}

func (p *condParser) parseAtom() (Expr, error) {
	if p.tok.kind == tkIdent {
		if strings.EqualFold(p.tok.text, "TRUE") {
			p.next()
			return Lit(true), nil
		}
		if strings.EqualFold(p.tok.text, "FALSE") {
			p.next()
			return Lit(false), nil
		}
	}
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tkOp {
		return nil, fmt.Errorf("cond: expected comparison operator at offset %d, got %q", p.tok.pos, p.tok.text)
	}
	var op Op
	switch p.tok.text {
	case "=":
		op = OpEq
	case "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return nil, fmt.Errorf("cond: bad operator %q", p.tok.text)
	}
	p.next()
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return Atom{L: l, Op: op, R: r}, nil
}

func (p *condParser) parseTerm() (Term, error) {
	switch p.tok.kind {
	case tkIdent:
		t := V(p.tok.text)
		p.next()
		return t, nil
	case tkNumber:
		text := p.tok.text
		p.next()
		if !strings.ContainsAny(text, ".eE") {
			n, err := strconv.ParseInt(text, 10, 64)
			if err == nil {
				return CI(n), nil
			}
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Term{}, fmt.Errorf("cond: bad number %q", text)
		}
		return C(types.NewFloat(f)), nil
	case tkString:
		t := C(types.NewString(p.tok.text))
		p.next()
		return t, nil
	default:
		return Term{}, fmt.Errorf("cond: expected term at offset %d, got %q", p.tok.pos, p.tok.text)
	}
}
