package cond

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

func TestOpApply(t *testing.T) {
	one, two := types.NewInt(1), types.NewInt(2)
	cases := []struct {
		op   Op
		a, b types.Value
		want bool
	}{
		{OpEq, one, one, true}, {OpEq, one, two, false},
		{OpNe, one, two, true}, {OpNe, one, one, false},
		{OpLt, one, two, true}, {OpLt, two, one, false},
		{OpLe, one, one, true}, {OpLe, two, one, false},
		{OpGt, two, one, true}, {OpGt, one, one, false},
		{OpGe, one, one, true}, {OpGe, one, two, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestOpNegateFlip(t *testing.T) {
	vals := []types.Value{types.NewInt(1), types.NewInt(2), types.NewInt(3)}
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		for _, a := range vals {
			for _, b := range vals {
				if op.Negate().Apply(a, b) == op.Apply(a, b) {
					t.Errorf("Negate(%s) not complementary", op)
				}
				if op.Flip().Apply(b, a) != op.Apply(a, b) {
					t.Errorf("Flip(%s) not operand-swap", op)
				}
			}
		}
	}
}

func TestEval(t *testing.T) {
	// (X = 1 AND Y < 5) OR NOT (X <> Z)
	e := Or{
		And{Cmp(V("X"), OpEq, CI(1)), Cmp(V("Y"), OpLt, CI(5))},
		Not{Cmp(V("X"), OpNe, V("Z"))},
	}
	cases := []struct {
		x, y, z int64
		want    bool
	}{
		{1, 3, 9, true},  // first disjunct
		{2, 3, 2, true},  // second disjunct (X = Z)
		{2, 3, 9, false}, // neither
		{1, 7, 9, false}, // Y too big, X ≠ Z
	}
	for _, c := range cases {
		v := Valuation{"X": types.NewInt(c.x), "Y": types.NewInt(c.y), "Z": types.NewInt(c.z)}
		if got := Eval(e, v); got != c.want {
			t.Errorf("Eval with X=%d Y=%d Z=%d: got %v", c.x, c.y, c.z, got)
		}
	}
}

func TestEvalUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unbound variable")
		}
	}()
	Eval(Cmp(V("X"), OpEq, CI(1)), Valuation{})
}

func TestVarsAndConstants(t *testing.T) {
	e := And{
		Cmp(V("B"), OpEq, CI(3)),
		Or{Cmp(V("A"), OpLt, V("B")), Not{Cmp(CI(1), OpEq, C(types.NewString("s")))}},
		Lit(true),
	}
	vars := Vars(e)
	if len(vars) != 2 || vars[0] != "A" || vars[1] != "B" {
		t.Errorf("Vars = %v", vars)
	}
	consts := Constants(e)
	if len(consts) != 3 {
		t.Errorf("Constants = %v", consts)
	}
}

func TestIsCNF(t *testing.T) {
	x1 := Cmp(V("X"), OpEq, CI(1))
	y2 := Cmp(V("Y"), OpLt, CI(2))
	cases := []struct {
		e    Expr
		want bool
	}{
		{x1, true},
		{Lit(true), true},
		{Not{x1}, true},
		{Or{x1, y2}, true},
		{Or{x1, Not{y2}}, true},
		{And{x1, y2}, true},
		{And{Or{x1, y2}, Not{x1}}, true},
		{Or{And{x1, y2}, x1}, false},      // AND inside OR
		{And{Or{And{x1, y2}}, x1}, false}, // nested AND in clause
		{Not{Or{x1, y2}}, false},          // negated clause
		{Not{And{x1, y2}}, false},
	}
	for i, c := range cases {
		if got := IsCNF(c.e); got != c.want {
			t.Errorf("case %d (%s): IsCNF = %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestCNFTautology(t *testing.T) {
	x := V("X")
	cases := []struct {
		name string
		e    Expr
		want bool
	}{
		{"trivial true", Lit(true), true},
		{"trivial false", Lit(false), false},
		{"ground true atom", Cmp(CI(1), OpEq, CI(1)), true},
		{"ground false atom", Cmp(CI(1), OpEq, CI(2)), false},
		{"complementary pair", Or{Cmp(x, OpEq, CI(1)), Cmp(x, OpNe, CI(1))}, true},
		{"literal and negation", Or{Cmp(x, OpLt, CI(5)), Not{Cmp(x, OpLt, CI(5))}}, true},
		{"le ge covering", Or{Cmp(x, OpLe, CI(3)), Cmp(x, OpGe, CI(3))}, true},
		{"lt gt gap at point", Or{Cmp(x, OpLt, CI(3)), Cmp(x, OpGt, CI(3))}, false},
		{"lt gt overlap", Or{Cmp(x, OpLt, CI(5)), Cmp(x, OpGt, CI(3))}, true},
		{"ne ne distinct", Or{Cmp(x, OpNe, CI(1)), Cmp(x, OpNe, CI(2))}, true},
		{"ne ne same", Or{Cmp(x, OpNe, CI(1)), Cmp(x, OpNe, CI(1))}, false},
		{"ne covers lt", Or{Cmp(x, OpNe, CI(1)), Cmp(x, OpLt, CI(5))}, true},
		{"ne covers gt", Or{Cmp(x, OpNe, CI(5)), Cmp(x, OpGt, CI(1))}, true},
		{"single satisfiable atom", Cmp(x, OpEq, CI(1)), false},
		{"conjunction of tautologies", And{
			Or{Cmp(x, OpEq, CI(1)), Cmp(x, OpNe, CI(1))},
			Cmp(CI(2), OpGt, CI(1)),
		}, true},
		{"conjunction with one non-tautology", And{
			Or{Cmp(x, OpEq, CI(1)), Cmp(x, OpNe, CI(1))},
			Cmp(x, OpGt, CI(1)),
		}, false},
		{"non-CNF rejected even if tautology", Not{And{Cmp(x, OpEq, CI(1)), Cmp(x, OpNe, CI(1))}}, false},
		{"var var complement", Or{Cmp(V("X"), OpLt, V("Y")), Cmp(V("X"), OpGe, V("Y"))}, true},
		{"var var flipped complement", Or{Cmp(V("X"), OpLt, V("Y")), Cmp(V("Y"), OpLe, V("X"))}, true},
		{"const first flip", Or{Cmp(CI(3), OpGt, x), Cmp(x, OpGe, CI(3))}, true},
	}
	for _, c := range cases {
		if got := CNFTautology(c.e); got != c.want {
			t.Errorf("%s: CNFTautology(%s) = %v, want %v", c.name, c.e, got, c.want)
		}
	}
}

func TestCNFTautologySoundness(t *testing.T) {
	// Everything CNFTautology accepts must be accepted by the exact solver
	// (c-soundness of the PTIME check) on random clauses.
	rng := rand.New(rand.NewSource(5))
	vars := []string{"X", "Y"}
	randAtom := func() Expr {
		ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		l := V(vars[rng.Intn(len(vars))])
		var r Term
		if rng.Intn(2) == 0 {
			r = CI(rng.Int63n(4))
		} else {
			r = V(vars[rng.Intn(len(vars))])
		}
		a := Cmp(l, ops[rng.Intn(len(ops))], r)
		if rng.Intn(4) == 0 {
			return Not{a}
		}
		return a
	}
	for trial := 0; trial < 300; trial++ {
		var clause Or
		for i := 0; i < rng.Intn(4)+1; i++ {
			clause = append(clause, randAtom())
		}
		var e Expr = clause
		if CNFTautology(e) && !Tautology(e) {
			t.Fatalf("CNFTautology accepted non-tautology %s", e)
		}
	}
}

func TestExactTautologyAndSat(t *testing.T) {
	x, y := V("X"), V("Y")
	cases := []struct {
		e         Expr
		taut, sat bool
	}{
		{Lit(true), true, true},
		{Lit(false), false, false},
		{Cmp(x, OpEq, CI(1)), false, true},
		{Or{Cmp(x, OpEq, CI(1)), Cmp(x, OpNe, CI(1))}, true, true},
		{And{Cmp(x, OpEq, CI(1)), Cmp(x, OpNe, CI(1))}, false, false},
		{Or{Cmp(x, OpLt, y), Cmp(x, OpGe, y)}, true, true},
		{And{Cmp(x, OpLt, y), Cmp(y, OpLt, x)}, false, false},
		// The paper's Example 9 shape: (X=1 → row1 yields (1,1)) covered in
		// models tests; here the raw disjunction over X.
		{Or{Cmp(x, OpEq, CI(1)), Cmp(x, OpNe, CI(1))}, true, true},
		// Non-CNF tautology that the PTIME check must reject but the exact
		// solver must accept.
		{Not{And{Cmp(x, OpEq, CI(1)), Cmp(x, OpNe, CI(1))}}, true, true},
		// Order reasoning across constants.
		{Or{Cmp(x, OpLt, CI(2)), Cmp(x, OpGt, CI(1))}, true, true},
		{And{Cmp(x, OpGt, CI(1)), Cmp(x, OpLt, CI(2))}, false, true}, // between 1 and 2
		{And{Cmp(x, OpGt, CI(1)), Cmp(x, OpLt, CI(2)), Cmp(x, OpEq, y)}, false, true},
	}
	for i, c := range cases {
		if got := Tautology(c.e); got != c.taut {
			t.Errorf("case %d: Tautology(%s) = %v, want %v", i, c.e, got, c.taut)
		}
		if got := Satisfiable(c.e); got != c.sat {
			t.Errorf("case %d: Satisfiable(%s) = %v, want %v", i, c.e, got, c.sat)
		}
	}
}

func TestTautologySatDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		e := randomExpr(rng, 2)
		if Tautology(e) != !Satisfiable(Not{e}) {
			t.Fatalf("duality violated for %s", e)
		}
	}
}

func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 {
		ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		vars := []string{"X", "Y"}
		l := V(vars[rng.Intn(2)])
		if rng.Intn(2) == 0 {
			return Cmp(l, ops[rng.Intn(6)], CI(rng.Int63n(3)))
		}
		return Cmp(l, ops[rng.Intn(6)], V(vars[rng.Intn(2)]))
	}
	switch rng.Intn(3) {
	case 0:
		return And{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	case 1:
		return Or{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	default:
		return Not{randomExpr(rng, depth-1)}
	}
}

func TestSimplify(t *testing.T) {
	x := V("X")
	cases := []struct {
		in   Expr
		want Expr
	}{
		{Cmp(CI(1), OpEq, CI(1)), Lit(true)},
		{Cmp(CI(1), OpEq, CI(2)), Lit(false)},
		{And{Lit(true), Cmp(x, OpEq, CI(1))}, Cmp(x, OpEq, CI(1))},
		{And{Lit(false), Cmp(x, OpEq, CI(1))}, Lit(false)},
		{Or{Lit(true), Cmp(x, OpEq, CI(1))}, Lit(true)},
		{Or{Lit(false), Cmp(x, OpEq, CI(1))}, Cmp(x, OpEq, CI(1))},
		{Not{Not{Cmp(x, OpEq, CI(1))}}, Cmp(x, OpEq, CI(1))},
		{Not{Cmp(x, OpLt, CI(1))}, Cmp(x, OpGe, CI(1))},
		{And{}, Lit(true)},
		{Or{}, Lit(false)},
	}
	for i, c := range cases {
		got := Simplify(c.in)
		if got.String() != c.want.String() {
			t.Errorf("case %d: Simplify(%s) = %s, want %s", i, c.in, got, c.want)
		}
	}
}

func TestSimplifyPreservesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		e := randomExpr(rng, 3)
		s := Simplify(e)
		if !Equivalent(e, s) {
			t.Fatalf("Simplify changed semantics: %s vs %s", e, s)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		taut bool
	}{
		{"X = 1 OR X <> 1", true},
		{"X = 1 AND X <> 1", false},
		{"TRUE", true},
		{"FALSE OR TRUE", true},
		{"NOT (X = 1 AND X <> 1)", true},
		{"X <= 2 OR X >= 2", true},
		{"X < 'abc' OR X >= 'abc'", true},
		{"X = 1.5 OR X <> 1.5", true},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := Tautology(e); got != c.taut {
			t.Errorf("Parse(%q): tautology = %v, want %v", c.in, got, c.taut)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		e := randomExpr(rng, 2)
		s := e.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !Equivalent(e, back) {
			t.Fatalf("round trip changed semantics: %s vs %s", e, back)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"X =", "= 1", "X ~ 1", "(X = 1", "X = 1 X = 2", "AND", ""} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("X =")
}

func TestSize(t *testing.T) {
	e := And{Cmp(V("X"), OpEq, CI(1)), Or{Cmp(V("Y"), OpLt, CI(2)), Not{Lit(false)}}}
	if Size(e) != 6 {
		t.Errorf("Size = %d, want 6", Size(e))
	}
}

func TestDomainCoversRegions(t *testing.T) {
	e := And{Cmp(V("X"), OpGt, CI(1)), Cmp(V("X"), OpLt, CI(2))}
	dom := Domain(e, 1)
	found := false
	for _, v := range dom {
		if v.IsNumeric() && v.Float() > 1 && v.Float() < 2 {
			found = true
		}
	}
	if !found {
		t.Error("Domain must include a point strictly between adjacent constants")
	}
}
