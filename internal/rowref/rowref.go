// Package rowref preserves the row-at-a-time (Volcano) execution engine
// that internal/physical replaced with batch-at-a-time operators. It exists
// for two reasons only: as the baseline side of the batch-vs-row benchmarks
// (internal/physbench, cmd/bench) and as the independent reference
// implementation the randomized agreement tests compare the batch engine
// against, row for row and in order. It is not wired into any production
// path and should not grow features; semantics here are frozen to PR 1.
package rowref

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/types"
)

// Operator is the frozen row-at-a-time iterator contract: Next returns one
// row, or (nil, nil) when exhausted.
type Operator interface {
	Schema() types.Schema
	Open() error
	Next() ([]types.Value, error)
	Close() error
}

// Drain opens op, collects every row, and closes it.
func Drain(op Operator) ([][]types.Value, error) {
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	var rows [][]types.Value
	for {
		row, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if row == nil {
			break
		}
		rows = append(rows, row)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}

// Lower compiles a logical plan into a row-at-a-time operator tree against
// src. Unlike physical.Lower it does not validate — reference plans are
// assumed well-formed (the batch engine is the validating path).
func Lower(n algebra.Node, src physical.Source) (Operator, error) {
	switch node := n.(type) {
	case *algebra.Scan:
		schema, rows, err := src.Resolve(node.Table)
		if err != nil {
			return nil, err
		}
		return &Scan{schema: schema, rows: rows}, nil
	case *algebra.Filter:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		return &Filter{Input: in, Pred: node.Pred}, nil
	case *algebra.Project:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		return &Project{Input: in, Exprs: node.Exprs,
			schema: types.Schema{Attrs: node.Names}}, nil
	case *algebra.Join:
		l, err := Lower(node.Left, src)
		if err != nil {
			return nil, err
		}
		r, err := Lower(node.Right, src)
		if err != nil {
			return nil, err
		}
		if len(node.EquiL) > 0 {
			return NewHashJoin(l, r, node.EquiL, node.EquiR, node.Residual), nil
		}
		return NewNestedLoopJoin(l, r, node.Residual), nil
	case *algebra.UnionAll:
		l, err := Lower(node.Left, src)
		if err != nil {
			return nil, err
		}
		r, err := Lower(node.Right, src)
		if err != nil {
			return nil, err
		}
		return &UnionAll{Left: l, Right: r}, nil
	case *algebra.Aggregate:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		attrs := append([]string{}, node.GroupNames...)
		for _, a := range node.Aggs {
			attrs = append(attrs, a.Name)
		}
		return &HashAggregate{Input: in, GroupBy: node.GroupBy, Aggs: node.Aggs,
			schema: types.Schema{Attrs: attrs}}, nil
	case *algebra.Sort:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		return &Sort{Input: in, Keys: node.Keys}, nil
	case *algebra.Limit:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		return &Limit{Input: in, N: node.N}, nil
	case *algebra.Distinct:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		return &Distinct{Input: in}, nil
	default:
		return nil, fmt.Errorf("rowref: unsupported plan node %T", n)
	}
}

// Scan streams the rows of a resolved base table one at a time.
type Scan struct {
	schema types.Schema
	rows   [][]types.Value
	pos    int
}

// NewScan builds a scan over pre-resolved rows.
func NewScan(schema types.Schema, rows [][]types.Value) *Scan {
	return &Scan{schema: schema, rows: rows}
}

// Schema implements Operator.
func (s *Scan) Schema() types.Schema { return s.schema }

// Open implements Operator.
func (s *Scan) Open() error { s.pos = 0; return nil }

// Next implements Operator.
func (s *Scan) Next() ([]types.Value, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// Filter streams the rows whose predicate evaluates to TRUE.
type Filter struct {
	Input Operator
	Pred  algebra.Expr
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.Input.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.Input.Open() }

// Next implements Operator.
func (f *Filter) Next() ([]types.Value, error) {
	for {
		row, err := f.Input.Next()
		if row == nil || err != nil {
			return nil, err
		}
		if algebra.Truthy(f.Pred.Eval(row)) {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Input.Close() }

// Project computes one output column per expression, allocating a fresh row
// per input row — the allocation pattern the batch engine's slabs replaced.
type Project struct {
	Input  Operator
	Exprs  []algebra.Expr
	schema types.Schema
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.Input.Open() }

// Next implements Operator.
func (p *Project) Next() ([]types.Value, error) {
	row, err := p.Input.Next()
	if row == nil || err != nil {
		return nil, err
	}
	out := make([]types.Value, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = e.Eval(row)
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Input.Close() }

// Limit emits the first N input rows, copied.
type Limit struct {
	Input   Operator
	N       int64
	emitted int64
}

// Schema implements Operator.
func (l *Limit) Schema() types.Schema { return l.Input.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { l.emitted = 0; return l.Input.Open() }

// Next implements Operator.
func (l *Limit) Next() ([]types.Value, error) {
	if l.emitted >= l.N {
		return nil, nil
	}
	row, err := l.Input.Next()
	if row == nil || err != nil {
		return nil, err
	}
	l.emitted++
	return append([]types.Value(nil), row...), nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Input.Close() }

// UnionAll streams the left input, then the right.
type UnionAll struct {
	Left, Right Operator
	onRight     bool
}

// Schema implements Operator.
func (u *UnionAll) Schema() types.Schema { return u.Left.Schema() }

// Open implements Operator.
func (u *UnionAll) Open() error {
	u.onRight = false
	if err := u.Left.Open(); err != nil {
		return err
	}
	return u.Right.Open()
}

// Next implements Operator.
func (u *UnionAll) Next() ([]types.Value, error) {
	if !u.onRight {
		row, err := u.Left.Next()
		if row != nil || err != nil {
			return row, err
		}
		u.onRight = true
	}
	return u.Right.Next()
}

// Close implements Operator.
func (u *UnionAll) Close() error {
	lerr := u.Left.Close()
	rerr := u.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// Distinct streams the first occurrence of each row.
type Distinct struct {
	Input Operator
	seen  map[string]bool
}

// Schema implements Operator.
func (d *Distinct) Schema() types.Schema { return d.Input.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = make(map[string]bool)
	return d.Input.Open()
}

// Next implements Operator.
func (d *Distinct) Next() ([]types.Value, error) {
	for {
		row, err := d.Input.Next()
		if row == nil || err != nil {
			return nil, err
		}
		k := types.Tuple(row).Key()
		if !d.seen[k] {
			d.seen[k] = true
			return row, nil
		}
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}

// joinKey builds the hash key for the given column positions, or reports
// false when any key column is NULL.
func joinKey(row []types.Value, idx []int) (string, bool) {
	key := make(types.Tuple, len(idx))
	for i, j := range idx {
		if row[j].IsNull() {
			return "", false
		}
		key[i] = row[j]
	}
	return key.Key(), true
}

func concatRow(l, r []types.Value) []types.Value {
	row := make([]types.Value, 0, len(l)+len(r))
	row = append(row, l...)
	row = append(row, r...)
	return row
}

// HashJoin is the row-at-a-time equi-join: build right, probe left, one
// fresh concatenated row per match.
type HashJoin struct {
	Left, Right  Operator
	EquiL, EquiR []int
	Residual     algebra.Expr
	schema       types.Schema

	build    map[string][][]types.Value
	probeRow []types.Value
	matches  [][]types.Value
	mi       int
}

// NewHashJoin builds a hash join; key positions are left- and right-relative.
func NewHashJoin(l, r Operator, equiL, equiR []int, residual algebra.Expr) *HashJoin {
	return &HashJoin{Left: l, Right: r, EquiL: equiL, EquiR: equiR,
		Residual: residual, schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Operator.
func (j *HashJoin) Schema() types.Schema { return j.schema }

// Open implements Operator.
func (j *HashJoin) Open() error {
	j.probeRow, j.matches, j.mi = nil, nil, 0
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.build = make(map[string][][]types.Value)
	for {
		row, err := j.Right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		if key, ok := joinKey(row, j.EquiR); ok {
			j.build[key] = append(j.build[key], row)
		}
	}
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next() ([]types.Value, error) {
	for {
		for j.mi < len(j.matches) {
			row := concatRow(j.probeRow, j.matches[j.mi])
			j.mi++
			if j.Residual == nil || algebra.Truthy(j.Residual.Eval(row)) {
				return row, nil
			}
		}
		probe, err := j.Left.Next()
		if probe == nil || err != nil {
			return nil, err
		}
		if key, ok := joinKey(probe, j.EquiL); ok {
			j.probeRow, j.matches, j.mi = probe, j.build[key], 0
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.build, j.matches, j.probeRow = nil, nil, nil
	lerr := j.Left.Close()
	rerr := j.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// NestedLoopJoin is the row-at-a-time theta-join fallback.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        algebra.Expr
	schema      types.Schema

	inner    [][]types.Value
	probeRow []types.Value
	ii       int
}

// NewNestedLoopJoin builds a nested-loop join.
func NewNestedLoopJoin(l, r Operator, pred algebra.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{Left: l, Right: r, Pred: pred,
		schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() types.Schema { return j.schema }

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	j.inner, j.probeRow, j.ii = nil, nil, 0
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	for {
		row, err := j.Right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		j.inner = append(j.inner, row)
	}
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() ([]types.Value, error) {
	for {
		if j.probeRow != nil {
			for j.ii < len(j.inner) {
				row := concatRow(j.probeRow, j.inner[j.ii])
				j.ii++
				if j.Pred == nil || algebra.Truthy(j.Pred.Eval(row)) {
					return row, nil
				}
			}
		}
		probe, err := j.Left.Next()
		if probe == nil || err != nil {
			return nil, err
		}
		j.probeRow, j.ii = probe, 0
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.inner, j.probeRow = nil, nil
	lerr := j.Left.Close()
	rerr := j.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// HashAggregate groups the input row by row and streams one result row per
// group in first-seen order.
type HashAggregate struct {
	Input   Operator
	GroupBy []algebra.Expr
	Aggs    []algebra.AggSpec
	schema  types.Schema

	out [][]types.Value
	pos int
}

// Schema implements Operator.
func (h *HashAggregate) Schema() types.Schema { return h.schema }

// aggState accumulates one group's running aggregates; semantics mirror
// internal/physical exactly (NULL-skipping, COUNT(*) counting rows, SUM
// staying integer until a float argument appears).
type aggState struct {
	groupRow []types.Value
	count    []int64
	sumI     []int64
	sumF     []float64
	isFloat  []bool
	min      []types.Value
	max      []types.Value
	seen     []bool
}

func newAggState(groupRow []types.Value, nAggs int) *aggState {
	return &aggState{
		groupRow: groupRow,
		count:    make([]int64, nAggs),
		sumI:     make([]int64, nAggs),
		sumF:     make([]float64, nAggs),
		isFloat:  make([]bool, nAggs),
		min:      make([]types.Value, nAggs),
		max:      make([]types.Value, nAggs),
		seen:     make([]bool, nAggs),
	}
}

func (st *aggState) absorb(aggs []algebra.AggSpec, row []types.Value) {
	for i, a := range aggs {
		if a.Star {
			st.count[i]++
			continue
		}
		v := a.Arg.Eval(row)
		if v.IsNull() {
			continue
		}
		st.count[i]++
		if v.IsNumeric() {
			if v.Kind() == types.KindFloat {
				st.isFloat[i] = true
			}
			if v.Kind() == types.KindInt {
				st.sumI[i] += v.Int()
			}
			st.sumF[i] += v.Float()
		}
		if !st.seen[i] {
			st.min[i], st.max[i] = v, v
			st.seen[i] = true
		} else {
			if v.Compare(st.min[i]) < 0 {
				st.min[i] = v
			}
			if v.Compare(st.max[i]) > 0 {
				st.max[i] = v
			}
		}
	}
}

func (st *aggState) result(aggs []algebra.AggSpec, nGroupCols int) []types.Value {
	row := make([]types.Value, 0, nGroupCols+len(aggs))
	row = append(row, st.groupRow...)
	for i, a := range aggs {
		switch a.Func {
		case algebra.AggCount:
			row = append(row, types.NewInt(st.count[i]))
		case algebra.AggSum:
			switch {
			case st.count[i] == 0:
				row = append(row, types.Null())
			case st.isFloat[i]:
				row = append(row, types.NewFloat(st.sumF[i]))
			default:
				row = append(row, types.NewInt(st.sumI[i]))
			}
		case algebra.AggAvg:
			if st.count[i] == 0 {
				row = append(row, types.Null())
			} else {
				row = append(row, types.NewFloat(st.sumF[i]/float64(st.count[i])))
			}
		case algebra.AggMin:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.min[i])
			}
		case algebra.AggMax:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.max[i])
			}
		}
	}
	return row
}

// Open implements Operator: it consumes the input and builds all groups.
func (h *HashAggregate) Open() error {
	h.out, h.pos = nil, 0
	if err := h.Input.Open(); err != nil {
		return err
	}
	nAggs := len(h.Aggs)
	groups := make(map[string]*aggState)
	var order []string
	for {
		row, err := h.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key := make(types.Tuple, len(h.GroupBy))
		for i, e := range h.GroupBy {
			key[i] = e.Eval(row)
		}
		ks := key.Key()
		st, ok := groups[ks]
		if !ok {
			st = newAggState(key, nAggs)
			groups[ks] = st
			order = append(order, ks)
		}
		st.absorb(h.Aggs, row)
	}
	if len(h.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newAggState(nil, nAggs)
		order = append(order, "")
	}
	h.out = make([][]types.Value, 0, len(order))
	for _, ks := range order {
		h.out = append(h.out, groups[ks].result(h.Aggs, len(h.GroupBy)))
	}
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() ([]types.Value, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	row := h.out[h.pos]
	h.pos++
	return row, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.out = nil
	return h.Input.Close()
}

// Sort orders the input by the keys: sorted runs merged by a heap, stable.
type Sort struct {
	Input   Operator
	Keys    []algebra.SortKey
	RunSize int // 0 means physical.DefaultSortRunSize

	runs [][][]types.Value
	h    *mergeHeap
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.Input.Schema() }

func (s *Sort) less(a, b []types.Value) bool {
	for _, k := range s.Keys {
		va, vb := k.Expr.Eval(a), k.Expr.Eval(b)
		c := va.Compare(vb)
		if c != 0 {
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// Open implements Operator.
func (s *Sort) Open() error {
	s.runs, s.h = nil, nil
	if err := s.Input.Open(); err != nil {
		return err
	}
	runSize := s.RunSize
	if runSize <= 0 {
		runSize = physical.DefaultSortRunSize
	}
	var run [][]types.Value
	flush := func() {
		if len(run) == 0 {
			return
		}
		sort.SliceStable(run, func(i, j int) bool { return s.less(run[i], run[j]) })
		s.runs = append(s.runs, run)
		run = nil
	}
	for {
		row, err := s.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		run = append(run, row)
		if len(run) >= runSize {
			flush()
		}
	}
	flush()
	s.h = &mergeHeap{sort: s}
	for i, r := range s.runs {
		s.h.items = append(s.h.items, mergeItem{run: i, rows: r})
	}
	heap.Init(s.h)
	return nil
}

// Next implements Operator.
func (s *Sort) Next() ([]types.Value, error) {
	if s.h.Len() == 0 {
		return nil, nil
	}
	top := &s.h.items[0]
	row := top.rows[top.pos]
	top.pos++
	if top.pos >= len(top.rows) {
		heap.Pop(s.h)
	} else {
		heap.Fix(s.h, 0)
	}
	return row, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.runs, s.h = nil, nil
	return s.Input.Close()
}

type mergeItem struct {
	run  int
	rows [][]types.Value
	pos  int
}

type mergeHeap struct {
	sort  *Sort
	items []mergeItem
}

func (h *mergeHeap) Len() int { return len(h.items) }

func (h *mergeHeap) Less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	ra, rb := a.rows[a.pos], b.rows[b.pos]
	if h.sort.less(ra, rb) {
		return true
	}
	if h.sort.less(rb, ra) {
		return false
	}
	return a.run < b.run
}

func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *mergeHeap) Push(x any) { h.items = append(h.items, x.(mergeItem)) }

func (h *mergeHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}
