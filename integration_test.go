package repro_test

// Cross-system integration tests: all five implementations answer the same
// PDBench workload, and their outputs must satisfy the containments the
// theory demands:
//
//	Libkin ⊆ certain ⊆ {UA-labeled certain} ∪ misses       (c-soundness)
//	UA-labeled certain ⊆ {tuples with lineage prob = 1}     (consistency)
//	every UA result tuple is a possible answer              (BGW ⊆ possible)
//	MCDB always-seen ⊇ certain                              (sampling)

import (
	"testing"

	"repro/internal/baseline/maybms"
	"repro/internal/baseline/mcdb"
	"repro/internal/kdb"
	"repro/internal/pdbench"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

func TestCrossSystemConsistency(t *testing.T) {
	w := pdbench.Generate(pdbench.Config{SF: 0.01, Uncertainty: 0.10, Seed: 99})
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range w.Tables {
		uaDB.Put(uadb.FromXDB(x))
	}
	front := rewrite.NewFrontend(rewrite.EncodeUADatabase(uaDB))
	linDB, blocks := maybms.BuildDB(w.Tables)

	for _, q := range pdbench.Queries() {
		uaRes, err := frontQueryTbl(front, q.SQL)
		if err != nil {
			t.Fatalf("%s UA: %v", q.Name, err)
		}
		linRes, err := maybms.Eval(q.RA, linDB)
		if err != nil {
			t.Fatalf("%s MayBMS: %v", q.Name, err)
		}
		mcRes, err := mcdb.Run(w.Tables, q.SQL, 15, 5)
		if err != nil {
			t.Fatalf("%s MCDB: %v", q.Name, err)
		}

		cIdx := uaRes.Schema.Arity() - 1
		for _, row := range uaRes.Rows {
			tp := types.Tuple(row[:cIdx])
			lin := linRes.Get(tp)
			// Every best-guess answer is a possible answer.
			if len(lin) == 0 {
				t.Errorf("%s: UA tuple %s has no lineage derivation", q.Name, tp)
				continue
			}
			if row[cIdx].Int() == 1 {
				// UA-labeled certain ⇒ probability 1 (c-soundness against
				// the independent lineage implementation).
				if p := blocks.Prob(lin); p < 1-1e-9 {
					t.Errorf("%s: UA claims %s certain but P = %f", q.Name, tp, p)
				}
				// ... and MCDB must have seen it in every sampled world.
				if mcRes.Count[tp.Key()] != mcRes.Samples {
					t.Errorf("%s: UA-certain tuple %s missing from an MCDB sample", q.Name, tp)
				}
			}
		}
		// Dually: every lineage-certain tuple appears in the UA result
		// (the BGW over-approximates certain answers).
		uaTuples := map[string]bool{}
		for _, row := range uaRes.Rows {
			uaTuples[types.Tuple(row[:cIdx]).Key()] = true
		}
		for _, tp := range linRes.Tuples() {
			if blocks.Prob(linRes.Get(tp)) >= 1-1e-9 && !uaTuples[tp.Key()] {
				t.Errorf("%s: certain tuple %s (per lineage) missing from the UA result", q.Name, tp)
			}
		}
	}
}

func TestUAFrontendAgreesWithKRelationSemantics(t *testing.T) {
	// The SQL middleware path and the direct N^UA K-relation evaluation
	// must produce identical annotation pairs on the PDBench queries
	// (Theorem 7 at workload scale; the unit-level property test lives in
	// internal/rewrite).
	w := pdbench.Generate(pdbench.Config{SF: 0.01, Uncertainty: 0.05, Seed: 3})
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range w.Tables {
		uaDB.Put(uadb.FromXDB(x))
	}
	front := rewrite.NewFrontend(rewrite.EncodeUADatabase(uaDB))
	for _, q := range pdbench.Queries() {
		direct, err := uadb.Eval(q.RA, uaDB)
		if err != nil {
			t.Fatalf("%s direct: %v", q.Name, err)
		}
		res, err := frontQueryTbl(front, q.SQL)
		if err != nil {
			t.Fatalf("%s SQL: %v", q.Name, err)
		}
		viaSQL, err := rewrite.UAFromTable(res)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Len() != viaSQL.Len() {
			t.Fatalf("%s: tuple counts differ: %d vs %d", q.Name, direct.Len(), viaSQL.Len())
		}
		mismatch := false
		direct.ForEach(func(tp types.Tuple, p semiring.Pair[int64]) {
			if viaSQL.Get(tp) != p {
				mismatch = true
			}
		})
		if mismatch {
			t.Errorf("%s: annotation pairs differ between the two evaluation paths", q.Name)
		}
	}
}
