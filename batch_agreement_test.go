package repro_test

// Randomized batch/row agreement: the batch engine (internal/physical) must
// produce byte-identical results, in identical first-seen order, to the
// frozen row-at-a-time reference (internal/rowref) on arbitrary plans —
// filters, equi- and theta-joins, aggregates, sort+limit, distinct, unions
// — and on UA-rewritten plans carrying the trailing certainty column.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/rowref"
	"repro/internal/types"
	"repro/internal/uadb"
)

// agreementCatalog builds small tables with NULLs, duplicate keys, and
// mixed int/string payloads.
func agreementCatalog(rng *rand.Rand) *engine.Catalog {
	cat := engine.NewCatalog()
	mk := func(name string, attrs []string, n int, gen func(i int) []types.Value) {
		t := engine.NewTable(types.NewSchema(name, attrs...))
		for i := 0; i < n; i++ {
			t.Append(gen(i))
		}
		cat.Put(t)
	}
	val := func() types.Value {
		switch rng.Intn(6) {
		case 0:
			return types.Null()
		case 1, 2, 3:
			return types.NewInt(int64(rng.Intn(6)))
		default:
			return types.NewString(string(rune('a' + rng.Intn(3))))
		}
	}
	mk("r", []string{"a", "b", "c"}, rng.Intn(60), func(i int) []types.Value {
		return []types.Value{val(), val(), types.NewInt(int64(i))}
	})
	mk("s", []string{"d", "e"}, rng.Intn(40), func(i int) []types.Value {
		return []types.Value{val(), types.NewInt(int64(i % 7))}
	})
	return cat
}

// planGen builds random logical plans, tracking output arity.
type planGen struct {
	rng    *rand.Rand
	cat    *engine.Catalog
	raPlus bool // restrict to RA⁺ (+ sort/limit), the fragment RewriteUA accepts
}

func (g *planGen) col(arity int) algebra.Expr {
	return algebra.Col{Idx: g.rng.Intn(arity), Name: "c"}
}

func (g *planGen) pred(arity int) algebra.Expr {
	ops := []algebra.BinOp{algebra.OpEq, algebra.OpNe, algebra.OpLt, algebra.OpGe}
	var right algebra.Expr
	if g.rng.Intn(2) == 0 {
		right = algebra.Const{V: types.NewInt(int64(g.rng.Intn(6)))}
	} else {
		right = g.col(arity)
	}
	p := algebra.Expr(algebra.Bin{Op: ops[g.rng.Intn(len(ops))], L: g.col(arity), R: right})
	if g.rng.Intn(4) == 0 {
		p = algebra.Bin{Op: algebra.OpAnd, L: p, R: algebra.IsNullE{E: g.col(arity), Negated: true}}
	}
	return p
}

func (g *planGen) scan() (algebra.Node, int) {
	names := g.cat.Names()
	t := g.cat.Get(names[g.rng.Intn(len(names))])
	return &algebra.Scan{Table: t.Schema.Name, TblSchema: t.Schema}, t.Schema.Arity()
}

// project wraps n in a projection to exactly the given arity.
func (g *planGen) project(n algebra.Node, inArity, outArity int) (algebra.Node, int) {
	exprs := make([]algebra.Expr, outArity)
	names := make([]string, outArity)
	for i := range exprs {
		switch g.rng.Intn(3) {
		case 0:
			exprs[i] = algebra.Const{V: types.NewInt(int64(g.rng.Intn(4)))}
		case 1:
			exprs[i] = g.col(inArity)
		default:
			exprs[i] = algebra.Bin{Op: algebra.OpAdd, L: g.col(inArity),
				R: algebra.Const{V: types.NewInt(int64(g.rng.Intn(3)))}}
		}
		names[i] = "p" + string(rune('0'+i))
	}
	return &algebra.Project{Input: n, Exprs: exprs, Names: names}, outArity
}

func (g *planGen) gen(depth int) (algebra.Node, int) {
	if depth <= 0 {
		return g.scan()
	}
	limit := 6
	if g.raPlus {
		limit = 5 // no aggregate/distinct under RewriteUA
	}
	switch g.rng.Intn(limit) {
	case 0: // filter
		in, arity := g.gen(depth - 1)
		return &algebra.Filter{Input: in, Pred: g.pred(arity)}, arity
	case 1: // project
		in, arity := g.gen(depth - 1)
		return g.project(in, arity, 1+g.rng.Intn(3))
	case 2: // join (equi, theta, or cross)
		l, la := g.gen(depth - 1)
		r, ra := g.gen(depth - 1)
		j := &algebra.Join{Left: l, Right: r}
		switch g.rng.Intn(3) {
		case 0:
			j.EquiL = []int{g.rng.Intn(la)}
			j.EquiR = []int{g.rng.Intn(ra)}
		case 1:
			j.Residual = algebra.Bin{Op: algebra.OpLt,
				L: algebra.Col{Idx: g.rng.Intn(la)}, R: algebra.Col{Idx: la + g.rng.Intn(ra)}}
		}
		return j, la + ra
	case 3: // union-all of two same-arity inputs
		arity := 1 + g.rng.Intn(3)
		l, la := g.gen(depth - 1)
		r, ra := g.gen(depth - 1)
		l, _ = g.project(l, la, arity)
		r, _ = g.project(r, ra, arity)
		return &algebra.UnionAll{Left: l, Right: r}, arity
	case 4: // sort (+ sometimes limit)
		in, arity := g.gen(depth - 1)
		var n algebra.Node = &algebra.Sort{Input: in, Keys: []algebra.SortKey{
			{Expr: g.col(arity), Desc: g.rng.Intn(2) == 0}}}
		if g.rng.Intn(2) == 0 {
			n = &algebra.Limit{Input: n, N: int64(g.rng.Intn(20))}
		}
		return n, arity
	default:
		if g.rng.Intn(2) == 0 { // distinct
			in, arity := g.gen(depth - 1)
			return &algebra.Distinct{Input: in}, arity
		}
		// aggregate
		in, arity := g.gen(depth - 1)
		aggs := []algebra.AggSpec{
			{Func: algebra.AggCount, Star: true, Name: "n"},
			{Func: algebra.AggSum, Arg: g.col(arity), Name: "s"},
			{Func: algebra.AggMin, Arg: g.col(arity), Name: "m"},
		}
		if g.rng.Intn(3) == 0 { // global aggregate
			return &algebra.Aggregate{Aggs: aggs, Input: in}, len(aggs)
		}
		return &algebra.Aggregate{Input: in,
			GroupBy:    []algebra.Expr{g.col(arity)},
			GroupNames: []string{"g"},
			Aggs:       aggs}, 1 + len(aggs)
	}
}

// mustAgreeOrdered drains op through both engines and requires identical
// rows in identical order (canonical key comparison — byte identical).
func mustAgreeOrdered(t *testing.T, plan algebra.Node, cat *engine.Catalog, what string) [][]types.Value {
	t.Helper()
	bop, err := physical.Lower(plan, cat)
	if err != nil {
		t.Fatalf("%s: batch lower: %v", what, err)
	}
	brows, err := physical.Drain(bop)
	if err != nil {
		t.Fatalf("%s: batch drain: %v", what, err)
	}
	rop, err := rowref.Lower(plan, cat)
	if err != nil {
		t.Fatalf("%s: row lower: %v", what, err)
	}
	rrows, err := rowref.Drain(rop)
	if err != nil {
		t.Fatalf("%s: row drain: %v", what, err)
	}
	if len(brows) != len(rrows) {
		t.Fatalf("%s: batch %d rows, row %d rows", what, len(brows), len(rrows))
	}
	for i := range brows {
		if types.Tuple(brows[i]).Key() != types.Tuple(rrows[i]).Key() {
			t.Fatalf("%s: row %d differs:\nbatch: %v\nrow:   %v", what, i, brows[i], rrows[i])
		}
	}
	return brows
}

func TestBatchRowAgreementRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 120; trial++ {
		cat := agreementCatalog(rng)
		g := &planGen{rng: rng, cat: cat}
		plan, _ := g.gen(1 + rng.Intn(3))

		rows := mustAgreeOrdered(t, plan, cat, "plan")

		// The optimizer path (engine.Execute) must agree as a bag — plan
		// normalization may reorder, but never change, the result.
		res, err := execPlanTbl(plan, cat)
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		ref := engine.NewTable(res.Schema)
		ref.Rows = rows
		if !res.EqualBag(ref) {
			t.Fatalf("optimized execution disagrees:\nplan rows %d, exec rows %d", len(rows), res.NumRows())
		}
	}
}

// TestBatchRowAgreementUA: UA-rewritten plans (trailing certainty column)
// agree between engines; on a deterministically-encoded database the
// certainty column is constant 1 and the user columns match the
// deterministic answer row for row.
func TestBatchRowAgreementUA(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 120; trial++ {
		det := agreementCatalog(rng)
		enc := engine.NewCatalog()
		for _, name := range det.Names() {
			enc.PutAs(name, rewrite.EncodeDeterministic(det.Get(name)))
		}
		g := &planGen{rng: rng, cat: det, raPlus: true}
		plan, arity := g.gen(1 + rng.Intn(3))

		ua, err := rewrite.RewriteUA(plan)
		if err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		if got := ua.Schema().Arity(); got != arity+1 {
			t.Fatalf("UA plan arity = %d, want %d (+%s)", got, arity+1, uadb.UAttr)
		}

		uaRows := mustAgreeOrdered(t, ua, enc, "ua plan")
		detRows := mustAgreeOrdered(t, plan, det, "det plan")

		if len(uaRows) != len(detRows) {
			t.Fatalf("UA rows %d, det rows %d", len(uaRows), len(detRows))
		}
		for i, ur := range uaRows {
			c := ur[len(ur)-1]
			if c.Kind() != types.KindInt || c.Int() != 1 {
				t.Fatalf("certainty column row %d = %v, want 1", i, c)
			}
			if types.Tuple(ur[:len(ur)-1]).Key() != types.Tuple(detRows[i]).Key() {
				t.Fatalf("UA user columns differ at row %d:\nua:  %v\ndet: %v", i, ur, detRows[i])
			}
		}
	}
}
