package repro_test

// Randomized typed/boxed agreement: the typed columnar engine (scans over a
// ColumnSource, unboxed kernels, per-vector key encoding) must produce
// byte-identical results, in identical first-seen order, to the boxed batch
// engine running the same plans against the same catalog stripped of its
// columnar storage — serially and at every DOP, on plain and UA-rewritten
// plans. This is the acceptance gate for the columnar layer: typed execution
// is an optimization, never a semantics change.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/types"
	"repro/internal/vector"
)

// rowSource strips the columnar half of a catalog: same tables, same rows,
// but no ResolveColumns, so lowering produces the boxed reference engine.
type rowSource struct{ cat *engine.Catalog }

func (s rowSource) Resolve(table string) (types.Schema, [][]types.Value, error) {
	return s.cat.Resolve(table)
}

// typedDOPs returns the worker counts the agreement suite runs: serial,
// fixed small parallelism, and whatever this machine calls full parallelism.
func typedDOPs() []int {
	dops := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		dops = append(dops, n)
	}
	return dops
}

func drainOpts(t *testing.T, plan algebra.Node, src physical.Source, opt physical.Options, what string) [][]types.Value {
	t.Helper()
	op, err := physical.LowerOpts(plan, src, opt)
	if err != nil {
		t.Fatalf("%s: lower: %v", what, err)
	}
	rows, err := physical.Drain(op)
	if err != nil {
		t.Fatalf("%s: drain: %v", what, err)
	}
	return rows
}

func mustMatchRows(t *testing.T, got, want [][]types.Value, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if types.Tuple(got[i]).Key() != types.Tuple(want[i]).Key() {
			t.Fatalf("%s: row %d differs:\ntyped: %v\nboxed: %v", what, i, got[i], want[i])
		}
	}
}

// typedAgreementCatalog extends the mixed-kind agreement tables with columns
// that stress the typed loops specifically: pure int64 and float64 columns
// (with NULLs, NaN, ±0, and huge ints past 2^53), pure strings, and bools.
func typedAgreementCatalog(rng *rand.Rand) *engine.Catalog {
	cat := agreementCatalog(rng)
	const big = int64(1) << 53
	floats := []float64{0, math.Copysign(0, -1), 1.5, -2.25, math.NaN(), math.Inf(1), 4, 4, 2}
	ints := []int64{0, 1, -1, 3, 3, big, big + 1, -big - 1}
	tt := engine.NewTable(types.NewSchema("typed", "i", "f", "s", "bo"))
	n := 5 + rng.Intn(80)
	for i := 0; i < n; i++ {
		row := []types.Value{
			types.NewInt(ints[rng.Intn(len(ints))]),
			types.NewFloat(floats[rng.Intn(len(floats))]),
			types.NewString(string(rune('a' + rng.Intn(4)))),
			types.NewBool(rng.Intn(2) == 0),
		}
		for j := range row {
			if rng.Intn(7) == 0 {
				row[j] = types.Null()
			}
		}
		tt.Append(row)
	}
	cat.Put(tt)
	return cat
}

func TestTypedBoxedAgreementRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 120; trial++ {
		cat := typedAgreementCatalog(rng)
		g := &planGen{rng: rng, cat: cat}
		plan, _ := g.gen(1 + rng.Intn(3))

		want := drainOpts(t, plan, rowSource{cat}, physical.Options{DOP: 1}, "boxed serial")
		for _, dop := range typedDOPs() {
			opt := physical.Options{DOP: dop, MorselSize: 64, MinParallelRows: 1}
			got := drainOpts(t, plan, cat, opt, "typed")
			mustMatchRows(t, got, want, "typed vs boxed")
		}
	}
}

// TestTypedBoxedAgreementUA runs UA-rewritten plans — trailing certainty
// column, least() certainty combination at joins — through the typed engine
// at every DOP against the boxed serial reference.
func TestTypedBoxedAgreementUA(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 120; trial++ {
		det := typedAgreementCatalog(rng)
		enc := engine.NewCatalog()
		for _, name := range det.Names() {
			enc.PutAs(name, rewrite.EncodeDeterministic(det.Get(name)))
		}
		g := &planGen{rng: rng, cat: det, raPlus: true}
		plan, _ := g.gen(1 + rng.Intn(3))
		ua, err := rewrite.RewriteUA(plan)
		if err != nil {
			t.Fatalf("rewrite: %v", err)
		}

		want := drainOpts(t, ua, rowSource{enc}, physical.Options{DOP: 1}, "boxed serial UA")
		for _, dop := range typedDOPs() {
			opt := physical.Options{DOP: dop, MorselSize: 64, MinParallelRows: 1}
			got := drainOpts(t, ua, enc, opt, "typed UA")
			mustMatchRows(t, got, want, "typed vs boxed UA")
		}
	}
}

// TestTypedPathEngages pins that the machinery is actually on: catalog scans
// emit columnar batches, a typed filter keeps a columnar view on its output,
// and a passthrough projection stays column-only (the contract Distinct's
// typed dedup keying relies on). A computing projection emits rows directly
// (the fused EvalVecStrided path) — also pinned, because silently staying
// columnar there would reintroduce the double materialization pass.
func TestTypedPathEngages(t *testing.T) {
	tb := engine.NewTable(types.NewSchema("t", "k", "v"))
	for i := 0; i < 100; i++ {
		tb.AppendVals(types.NewInt(int64(i%7)), types.NewInt(int64(i)))
	}
	cat := engine.NewCatalog()
	cat.Put(tb)

	cols, ok := cat.ResolveColumns("t")
	if !ok || cols == nil {
		t.Fatal("catalog does not provide columnar storage")
	}
	if _, isInt := cols.Vecs[1].(*vector.Int64Vector); !isInt {
		t.Fatalf("column v inferred as %T, want *Int64Vector", cols.Vecs[1])
	}

	scan := func() algebra.Node { return &algebra.Scan{Table: "t", TblSchema: tb.Schema} }
	filter := func() algebra.Node {
		return &algebra.Filter{Input: scan(),
			Pred: algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1, Name: "v"},
				R: algebra.Const{V: types.NewInt(50)}}}
	}
	firstBatch := func(t *testing.T, plan algebra.Node) (*physical.Batch, func()) {
		t.Helper()
		op, err := physical.Lower(plan, cat)
		if err != nil {
			t.Fatal(err)
		}
		if err := op.Open(); err != nil {
			t.Fatal(err)
		}
		b, err := op.Next()
		if err != nil || b == nil {
			op.Close()
			t.Fatalf("Next: batch %v err %v", b, err)
		}
		return b, func() { op.Close() }
	}

	// Typed filter: columnar view survives the selection.
	b, done := firstBatch(t, filter())
	if b.Cols() == nil {
		t.Fatal("typed filter over typed columns fell back to boxed batches")
	}
	done()

	// Passthrough projection: column-only output, zero-copy column window.
	b, done = firstBatch(t, &algebra.Project{Input: filter(),
		Exprs: []algebra.Expr{algebra.Col{Idx: 0, Name: "k"}}, Names: []string{"k"}})
	if b.Cols() == nil {
		t.Fatal("passthrough projection dropped its columnar view")
	}
	if _, isInt := b.Cols()[0].(*vector.Int64Vector); !isInt {
		t.Fatalf("passthrough column is %T, want *Int64Vector", b.Cols()[0])
	}
	done()

	// Computing projection: fused typed evaluation into row output.
	b, done = firstBatch(t, &algebra.Project{Input: filter(),
		Exprs: []algebra.Expr{algebra.Col{Idx: 0, Name: "k"},
			algebra.Bin{Op: algebra.OpAdd, L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 1}}},
		Names: []string{"k", "kv"}})
	if b.Cols() != nil {
		t.Fatal("computing projection kept a columnar view; fused strided output expected")
	}
	for i, r := range b.Rows() {
		if r[1].Kind() != types.KindInt {
			t.Fatalf("row %d: kv kind %s, want INTEGER", i, r[1].Kind())
		}
	}
	done()
}
