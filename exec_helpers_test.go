package repro_test

// Shared execution helpers: every root test drives the engine through the
// single non-deprecated entrypoints (engine.Session.Execute and
// rewrite.Frontend.Query) and materializes the *engine.Table shape the
// assertions compare.

import (
	"context"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
)

// execPlanTbl runs a compiled logical plan against cat with default options.
func execPlanTbl(plan algebra.Node, cat *engine.Catalog) (*engine.Table, error) {
	res, err := engine.NewSession(cat, physical.Options{}).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

// execSQLTbl plans and runs a deterministic SQL string against cat.
func execSQLTbl(cat *engine.Catalog, query string) (*engine.Table, error) {
	plan, err := engine.NewPlanner(cat).PlanSQL(query)
	if err != nil {
		return nil, err
	}
	return execPlanTbl(plan, cat)
}

// frontQueryTbl runs a UA-SQL query through the frontend, materialized.
func frontQueryTbl(front *rewrite.Frontend, query string) (*engine.Table, error) {
	res, err := front.Query(context.Background(), query, front.Opts)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}
