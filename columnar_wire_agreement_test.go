package repro_test

// Randomized wire agreement: a query result fetched over the server —
// in the binary columnar encoding or the JSON encoding — must materialize
// to byte-identical rows, in identical order, to the serial one-shot
// Frontend.Query of the same statement. Across DOP 1/2/NumCPU, under
// unlimited and admission-governed tight budgets, on deterministic and
// UA-rewritten (IS TI) plans, with NaN payloads, ±Inf, ±0, full-precision
// 2^53-range int64s, NULLs, and mixed-kind columns crossing the wire.
//
// The bulk float corpus is dyadic, matching the spill agreement suite; the
// extreme values (NaN, ±Inf, 2^53-range ints, mixed kinds) ride in their
// own column so every family can project them while ORDER BY over a unique
// integer key keeps the comparison exact at every DOP. Aggregation stays
// out: the frontend UA-rewrites every statement and the paper leaves
// aggregation over UA-DBs as future work.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
)

// wireExtremes is the projection-only corpus: every value the engine can
// hold whose wire encoding could plausibly be lossy.
var wireExtremes = []types.Value{
	types.NewFloat(math.NaN()),
	types.NewFloat(math.Inf(1)),
	types.NewFloat(math.Inf(-1)),
	types.NewFloat(math.Copysign(0, -1)),
	types.NewFloat(5e-324),
	types.NewInt(1 << 53),
	types.NewInt(1<<53 + 1),
	types.NewInt(math.MaxInt64),
	types.NewInt(math.MinInt64),
	types.NewString("héllo ☃"),
	types.NewString(""),
	types.NewBool(true),
	types.Null(),
}

// wireFrontend builds the deterministic fixture shared by the server under
// test and the serial reference run.
func wireFrontend(rows int) *rewrite.Frontend {
	front := rewrite.NewFrontend(engine.NewCatalog())
	dyadic := []float64{0, math.Copysign(0, -1), 1.5, -2.25, 4, 2, 0.5, -8, 1024.125}

	facts := engine.NewTable(types.NewSchema("facts", "id", "g", "a", "b", "s", "x"))
	for i := 0; i < rows; i++ {
		g := types.Value(types.NewInt(int64(i % 11)))
		if i%23 == 0 {
			g = types.Null()
		}
		b := types.Value(types.NewInt(int64((i * 7919) % 17)))
		if i%13 == 0 {
			b = types.Null()
		}
		facts.AppendVals(
			types.NewInt(int64(i)),
			g,
			types.NewFloat(dyadic[i%len(dyadic)]),
			b,
			types.NewString(string(rune('a'+i%5))),
			wireExtremes[i%len(wireExtremes)],
		)
	}
	front.Enc.Put(rewrite.EncodeDeterministic(facts))

	dims := engine.NewTable(types.NewSchema("dims", "k", "grp"))
	for k := 0; k < 11; k++ {
		dims.AppendVals(types.NewInt(int64(k)), types.NewInt(int64(k%3)))
	}
	front.Enc.Put(rewrite.EncodeDeterministic(dims))

	readings := engine.NewTable(types.NewSchema("readings", "sid", "val", "p"))
	for i := 0; i < rows/4; i++ {
		p := 1.0
		if i%3 == 0 {
			p = 0.25
		}
		readings.AppendVals(types.NewInt(int64(i)), types.NewFloat(float64(i%40)+0.5), types.NewFloat(p))
	}
	front.Raw.Put(readings)
	return front
}

// wireQueries draws the trial statements: every family carries an ORDER BY
// over a unique key so row order is deterministic at any DOP, and only
// dyadic columns feed aggregates.
func wireQueries(rng *rand.Rand, trials int) []string {
	var qs []string
	for i := 0; i < trials; i++ {
		switch i % 5 {
		case 0: // extremes and mixed-kind column over the wire
			qs = append(qs, fmt.Sprintf(
				"SELECT id, x, a, s FROM facts WHERE b < %d ORDER BY id", 3+rng.Intn(12)))
		case 1: // arithmetic projection
			qs = append(qs, fmt.Sprintf(
				"SELECT id, a + %d.5 AS aa, b * 2 AS bb FROM facts WHERE id >= %d ORDER BY id",
				rng.Intn(4), rng.Intn(1000)))
		case 2: // union of disjoint ranges through a subquery, still uniquely keyed
			qs = append(qs, fmt.Sprintf(
				"SELECT * FROM (SELECT id, a, x FROM facts WHERE id < %d UNION ALL SELECT id, a, x FROM facts WHERE id >= %d) u ORDER BY id",
				rng.Intn(1000), 3000+rng.Intn(500)))
		case 3: // join
			qs = append(qs, fmt.Sprintf(
				"SELECT f.id, f.a, d.grp FROM facts f, dims d WHERE f.g = d.k AND d.grp = %d ORDER BY f.id",
				rng.Intn(3)))
		default: // UA-rewritten plan with the trailing certainty column
			qs = append(qs, fmt.Sprintf(
				"SELECT sid, val FROM readings IS TI WITH PROBABILITY (p) WHERE val > %d.5 ORDER BY sid",
				rng.Intn(20)))
		}
	}
	return qs
}

func wireBitEqual(a, b types.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case types.KindNull:
		return true
	case types.KindInt:
		return a.Int() == b.Int()
	case types.KindFloat:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case types.KindString:
		return a.Str() == b.Str()
	default:
		return a.Bool() == b.Bool()
	}
}

func mustMatchWire(t *testing.T, what, q string, gotSchema []string, got [][]types.Value, wantSchema types.Schema, want [][]types.Value) {
	t.Helper()
	if len(gotSchema) != len(wantSchema.Attrs) {
		t.Fatalf("%s %q: schema %v, want %v", what, q, gotSchema, wantSchema.Attrs)
	}
	for i, attr := range wantSchema.Attrs {
		if gotSchema[i] != attr {
			t.Fatalf("%s %q: schema %v, want %v", what, q, gotSchema, wantSchema.Attrs)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s %q: %d rows, want %d", what, q, len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if !wireBitEqual(got[i][j], want[i][j]) {
				t.Fatalf("%s %q: row %d col %d = %v (%s), want %v (%s)",
					what, q, i, j, got[i][j], got[i][j].Kind(), want[i][j], want[i][j].Kind())
			}
		}
	}
}

// TestColumnarWireAgreementRandomized is the acceptance harness for the
// wire protocol: the binary columnar encoding is a representation change,
// never a semantics change, under every execution regime the server offers.
func TestColumnarWireAgreementRandomized(t *testing.T) {
	const rows = 4000
	queries := wireQueries(rand.New(rand.NewSource(97)), 15)

	// Serial one-shot reference, computed once per statement.
	refFront := wireFrontend(rows)
	type ref struct {
		schema types.Schema
		rows   [][]types.Value
	}
	want := map[string]ref{}
	for _, q := range queries {
		res, err := refFront.Query(context.Background(), q, rewrite.QueryOpts{DOP: 1})
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		want[q] = ref{res.Schema, res.Rows()}
	}

	dops := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		dops = append(dops, n)
	}

	budgets := []struct {
		name   string
		cfg    server.Config
		perQ   string // session mem budget; "" keeps the server default
		expect bool   // admission ledger present
	}{
		{name: "unlimited", cfg: server.Config{}},
		{name: "tight", cfg: server.Config{GlobalBudget: 1 << 20}, perQ: "128K", expect: true},
	}

	for _, bud := range budgets {
		bud := bud
		t.Run(bud.name, func(t *testing.T) {
			cfg := bud.cfg
			cfg.Front = wireFrontend(rows)
			if cfg.GlobalBudget > 0 {
				cfg.SpillDir = t.TempDir()
			}
			srv := server.New(cfg)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Close()
			addr := ln.Addr().String()

			for _, enc := range []string{server.EncodingColBin, server.EncodingJSON} {
				var c *client.Client
				var err error
				if enc == server.EncodingColBin {
					c, err = client.Dial(addr)
				} else {
					c, err = client.DialJSON(addr)
				}
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if got := c.Encoding(); got != enc {
					t.Fatalf("client negotiated %q, want %q", got, enc)
				}

				for _, dop := range dops {
					dop := dop
					opts := server.SessionOpts{DOP: &dop}
					if bud.perQ != "" {
						mb := bud.perQ
						opts.MemBudget = &mb
					}
					if err := c.Set(opts); err != nil {
						t.Fatal(err)
					}
					for _, q := range queries {
						res, err := c.Query(q)
						if err != nil {
							t.Fatalf("%s dop=%d %q: %v", enc, dop, q, err)
						}
						w := want[q]
						mustMatchWire(t, fmt.Sprintf("%s dop=%d", enc, dop),
							q, res.Schema, res.Rows(), w.schema, w.rows)
					}
				}
			}

			// The grid must leave the admission ledger drained.
			if bud.expect {
				c, err := client.Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				st, err := c.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if st.Granted != 0 || st.InUse != 0 {
					t.Fatalf("ledger not drained: granted=%d inuse=%d", st.Granted, st.InUse)
				}
			}
		})
	}
}

// TestColumnarWireColumnsAccess pins the columnar client surface itself:
// a colbin result exposes vectors directly, and the lazily boxed rows view
// agrees with them cell for cell.
func TestColumnarWireColumnsAccess(t *testing.T) {
	srv := server.New(server.Config{Front: wireFrontend(500)})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("SELECT id, x, a FROM facts ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	cols := res.Columns()
	if cols == nil {
		t.Fatal("colbin result did not expose columns")
	}
	rows := res.Rows()
	if cols.N != len(rows) || cols.N != res.NumRows() || cols.N != 500 {
		t.Fatalf("row counts disagree: cols %d, rows %d, NumRows %d", cols.N, len(rows), res.NumRows())
	}
	for j, v := range cols.Vecs {
		for i := 0; i < cols.N; i++ {
			if !wireBitEqual(v.Value(i), rows[i][j]) {
				t.Fatalf("col %d row %d: vector %v, boxed %v", j, i, v.Value(i), rows[i][j])
			}
		}
	}
}
