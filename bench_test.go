// Package repro's root benchmark suite: one testing.B benchmark per table or
// figure of the paper's evaluation (Section 11). These complement cmd/bench,
// which regenerates the full data series; the benchmarks here time the
// systems' core operations under `go test -bench`.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/baseline/ctexact"
	"repro/internal/baseline/libkin"
	"repro/internal/baseline/maybms"
	"repro/internal/baseline/mcdb"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/pdbench"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// --- Figure 10: certain answers over C-tables vs UA-DBs ---

func BenchmarkFig10(b *testing.B) {
	cfg := experiments.DefaultFig10()
	cfg.Rows = 25
	cfg.QueriesPerOp = 2
	cfg.MaxOps = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig10(cfg)
	}
}

// pdbenchSetup materializes every system's input once.
type pdbenchEnv struct {
	w      *pdbench.Workload
	detCat *engine.Catalog
	front  *rewrite.Frontend
	codd   *engine.Catalog
	linDB  *kdb.Database[maybms.Lineage]
}

func setupPDBench(b *testing.B, sf, u float64) *pdbenchEnv {
	b.Helper()
	w := pdbench.Generate(pdbench.Config{SF: sf, Uncertainty: u, Seed: 7})
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range w.Tables {
		uaDB.Put(uadb.FromXDB(x))
	}
	linDB, _ := maybms.BuildDB(w.Tables)
	return &pdbenchEnv{
		w:      w,
		detCat: rewrite.DetCatalog(uaDB),
		front:  rewrite.NewFrontend(rewrite.EncodeUADatabase(uaDB)),
		codd:   libkin.CoddCatalog(w.Tables),
		linDB:  linDB,
	}
}

// --- Figures 11-14: PDBench systems comparison ---

func BenchmarkFig11PDBench(b *testing.B) {
	env := setupPDBench(b, 0.02, 0.10)
	for _, q := range pdbench.Queries() {
		q := q
		b.Run(q.Name+"/Det", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := execSQLTbl(env.detCat, q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/UADB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := frontQueryTbl(env.front, q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/Libkin", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := libkin.Run(env.codd, q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/MayBMS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := maybms.Eval(q.RA, env.linDB); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/MCDB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mcdb.Run(env.w.Tables, q.SQL, 10, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig12ResultSizes(b *testing.B) {
	env := setupPDBench(b, 0.02, 0.30)
	q := pdbench.Queries()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uaRes, err := frontQueryTbl(env.front, q.SQL)
		if err != nil {
			b.Fatal(err)
		}
		linRes, err := maybms.Eval(q.RA, env.linDB)
		if err != nil {
			b.Fatal(err)
		}
		if uaRes.NumRows() > linRes.Len() {
			b.Fatal("UA-DB result cannot exceed the possible answers")
		}
	}
}

func BenchmarkFig13CertainFraction(b *testing.B) {
	env := setupPDBench(b, 0.02, 0.10)
	q := pdbench.Queries()[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := frontQueryTbl(env.front, q.SQL)
		if err != nil {
			b.Fatal(err)
		}
		c := res.Schema.Arity() - 1
		n := 0
		for _, row := range res.Rows {
			if row[c].Int() == 1 {
				n++
			}
		}
	}
}

func BenchmarkFig14Scaling(b *testing.B) {
	for _, sf := range []float64{0.01, 0.04} {
		env := setupPDBench(b, sf, 0.02)
		q := pdbench.Queries()[0]
		b.Run(bname("SF", sf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := frontQueryTbl(env.front, q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 15/16: dataset generation and FNR measurement ---

func BenchmarkFig15ProjectionFNR(b *testing.B) {
	spec := datagen.Specs()[1] // Shootings in Buffalo
	d := datagen.Generate(spec)
	ua := uadb.FromXDB(d.X)
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	uaDB.Put(ua)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rng.Perm(spec.Cols)[:5]
		attrs := make([]string, len(idx))
		for j, k := range idx {
			attrs[j] = spec.ColName(k)
		}
		if _, err := uadb.Eval(kdb.ProjectQ{Input: kdb.Table{Name: "t"}, Attrs: attrs}, uaDB); err != nil {
			b.Fatal(err)
		}
		models.CertainSP(d.X, nil, idx)
	}
}

func BenchmarkFig16DatasetGeneration(b *testing.B) {
	spec := datagen.Specs()[5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := datagen.Generate(spec)
		d.UncertainRowFraction()
	}
}

// --- Figure 17: real queries overhead ---

func BenchmarkFig17RealQueries(b *testing.B) {
	rt := datagen.GenerateRealTables(1500, 0.05, 9)
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range rt.Tables() {
		uaDB.Put(uadb.FromXDB(x))
	}
	detCat := rewrite.DetCatalog(uaDB)
	front := rewrite.NewFrontend(rewrite.EncodeUADatabase(uaDB))
	for _, q := range datagen.RealQueries() {
		q := q
		b.Run(q.Name+"/Det", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := execSQLTbl(detCat, q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/UADB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := frontQueryTbl(front, q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 18: utility ---

func BenchmarkFig18Utility(b *testing.B) {
	ud := datagen.GenerateUtility(1000, 8, 0.3, datagen.BGQP, 21)
	groundCat := engine.NewCatalog()
	groundCat.Put(ud.Ground)
	nulledCat := engine.NewCatalog()
	nulledCat.Put(ud.Nulled)
	query := "SELECT a0, a1, a2 FROM t WHERE a3 = 'c3_v0'"
	truth, err := execSQLTbl(groundCat, query)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib, err := libkin.Run(nulledCat, query)
		if err != nil {
			b.Fatal(err)
		}
		datagen.PrecisionRecall(lib, truth)
	}
}

// --- Figure 19: probabilistic databases ---

func BenchmarkFig19Probabilistic(b *testing.B) {
	cfg := experiments.DefaultFig19()
	cfg.Rows = 200
	cfg.Alternatives = []int{2, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig19(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 20/21: beyond set semantics ---

func BenchmarkFig20BagProjections(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Fig20(1, 3)
	}
}

func BenchmarkFig21AccessControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig21(1, 3)
	}
}

// --- Micro-benchmarks of the core machinery ---

func BenchmarkRewriteOverheadMicro(b *testing.B) {
	// The per-operator cost of the UA rewriting itself (not execution).
	env := setupPDBench(b, 0.01, 0.02)
	_ = env
	w := pdbench.Generate(pdbench.Config{SF: 0.01, Uncertainty: 0.02, Seed: 7})
	schemas := map[string]types.Schema{}
	for n, x := range w.Tables {
		schemas[n] = x.Schema
	}
	q := pdbench.Queries()[0].RA
	plan, err := rewrite.FromKDB(q, schemas)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.RewriteUA(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCTableSolver(b *testing.B) {
	ct := models.NewCTable(types.NewSchema("r", "a", "b"))
	ct.AddGround(types.Tuple{types.NewInt(1), types.NewInt(2)})
	sym := ctexact.FromCTable(ct)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctexact.CertainTuples(sym)
	}
}

func bname(prefix string, v float64) string {
	return prefix + "=" + types.NewFloat(v).String()
}

// joinBenchCatalog builds two n-row tables with matching integer keys and a
// payload column, so an equality join produces n output rows.
func joinBenchCatalog(n int) (*engine.Catalog, algebra.Node) {
	cat := engine.NewCatalog()
	mk := func(name string) *engine.Table {
		t := engine.NewTable(types.NewSchema(name, "k", "v"))
		for i := 0; i < n; i++ {
			t.AppendVals(types.NewInt(int64(i)), types.NewInt(int64(i*7)))
		}
		cat.Put(t)
		return t
	}
	l, r := mk("l"), mk("r")
	// The equality is carried only as a residual: the optimizer must extract
	// it into hash keys, while lowering the raw plan keeps the nested loop.
	plan := &algebra.Join{
		Left:  &algebra.Scan{Table: "l", TblSchema: l.Schema},
		Right: &algebra.Scan{Table: "r", TblSchema: r.Schema},
		Residual: algebra.Bin{Op: algebra.OpEq,
			L: algebra.Col{Idx: 0, Name: "k"},
			R: algebra.Col{Idx: 2, Name: "k"},
		},
	}
	return cat, plan
}

// BenchmarkJoinHashVsNestedLoop is the physical layer's perf baseline: the
// same equality join executed through the optimizer (hash join, O(n+m)) and
// as a raw nested loop (O(n·m)). The acceptance bar for the physical engine
// is ≥10x at n=10000.
func BenchmarkJoinHashVsNestedLoop(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		cat, plan := joinBenchCatalog(n)
		b.Run("Hash/n="+types.NewInt(int64(n)).String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := execPlanTbl(plan, cat)
				if err != nil {
					b.Fatal(err)
				}
				if res.NumRows() != n {
					b.Fatalf("rows = %d, want %d", res.NumRows(), n)
				}
			}
		})
		b.Run("NestedLoop/n="+types.NewInt(int64(n)).String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op, err := physical.Lower(plan, cat)
				if err != nil {
					b.Fatal(err)
				}
				rows, err := physical.Drain(op)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != n {
					b.Fatalf("rows = %d, want %d", len(rows), n)
				}
			}
		})
	}
}

// BenchmarkUAOverheadMicro measures the paper's headline claim end to end on
// the physical engine: the same join query over the deterministic database
// vs its UA-encoding (every row certain). The gap is the full UA-DB
// overhead — one extra column through scan, hash join, and projection plus
// the certainty combination.
func BenchmarkUAOverheadMicro(b *testing.B) {
	const n = 5000
	det := engine.NewCatalog()
	mk := func(name string) {
		t := engine.NewTable(types.NewSchema(name, "k", "v"))
		for i := 0; i < n; i++ {
			t.AppendVals(types.NewInt(int64(i)), types.NewInt(int64(i*3)))
		}
		det.Put(t)
	}
	mk("l")
	mk("r")
	enc := engine.NewCatalog()
	for _, name := range det.Names() {
		enc.PutAs(name, rewrite.EncodeDeterministic(det.Get(name)))
	}
	const q = "SELECT l.v, r.v FROM l, r WHERE l.k = r.k AND l.v < 9000"
	b.Run("Deterministic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := execSQLTbl(det, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("UAEncoded", func(b *testing.B) {
		front := rewrite.NewFrontend(enc)
		for i := 0; i < b.N; i++ {
			if _, err := frontQueryTbl(front, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
