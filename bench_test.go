// Package repro's root benchmark suite: one testing.B benchmark per table or
// figure of the paper's evaluation (Section 11). These complement cmd/bench,
// which regenerates the full data series; the benchmarks here time the
// systems' core operations under `go test -bench`.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/baseline/ctexact"
	"repro/internal/baseline/libkin"
	"repro/internal/baseline/maybms"
	"repro/internal/baseline/mcdb"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/pdbench"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// --- Figure 10: certain answers over C-tables vs UA-DBs ---

func BenchmarkFig10(b *testing.B) {
	cfg := experiments.DefaultFig10()
	cfg.Rows = 25
	cfg.QueriesPerOp = 2
	cfg.MaxOps = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig10(cfg)
	}
}

// pdbenchSetup materializes every system's input once.
type pdbenchEnv struct {
	w      *pdbench.Workload
	detCat *engine.Catalog
	front  *rewrite.Frontend
	codd   *engine.Catalog
	linDB  *kdb.Database[maybms.Lineage]
}

func setupPDBench(b *testing.B, sf, u float64) *pdbenchEnv {
	b.Helper()
	w := pdbench.Generate(pdbench.Config{SF: sf, Uncertainty: u, Seed: 7})
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range w.Tables {
		uaDB.Put(uadb.FromXDB(x))
	}
	linDB, _ := maybms.BuildDB(w.Tables)
	return &pdbenchEnv{
		w:      w,
		detCat: rewrite.DetCatalog(uaDB),
		front:  rewrite.NewFrontend(rewrite.EncodeUADatabase(uaDB)),
		codd:   libkin.CoddCatalog(w.Tables),
		linDB:  linDB,
	}
}

// --- Figures 11-14: PDBench systems comparison ---

func BenchmarkFig11PDBench(b *testing.B) {
	env := setupPDBench(b, 0.02, 0.10)
	for _, q := range pdbench.Queries() {
		q := q
		b.Run(q.Name+"/Det", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.NewPlanner(env.detCat).Run(q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/UADB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.front.Run(q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/Libkin", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := libkin.Run(env.codd, q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/MayBMS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := maybms.Eval(q.RA, env.linDB); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/MCDB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mcdb.Run(env.w.Tables, q.SQL, 10, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig12ResultSizes(b *testing.B) {
	env := setupPDBench(b, 0.02, 0.30)
	q := pdbench.Queries()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uaRes, err := env.front.Run(q.SQL)
		if err != nil {
			b.Fatal(err)
		}
		linRes, err := maybms.Eval(q.RA, env.linDB)
		if err != nil {
			b.Fatal(err)
		}
		if uaRes.NumRows() > linRes.Len() {
			b.Fatal("UA-DB result cannot exceed the possible answers")
		}
	}
}

func BenchmarkFig13CertainFraction(b *testing.B) {
	env := setupPDBench(b, 0.02, 0.10)
	q := pdbench.Queries()[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := env.front.Run(q.SQL)
		if err != nil {
			b.Fatal(err)
		}
		c := res.Schema.Arity() - 1
		n := 0
		for _, row := range res.Rows {
			if row[c].Int() == 1 {
				n++
			}
		}
	}
}

func BenchmarkFig14Scaling(b *testing.B) {
	for _, sf := range []float64{0.01, 0.04} {
		env := setupPDBench(b, sf, 0.02)
		q := pdbench.Queries()[0]
		b.Run(bname("SF", sf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.front.Run(q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 15/16: dataset generation and FNR measurement ---

func BenchmarkFig15ProjectionFNR(b *testing.B) {
	spec := datagen.Specs()[1] // Shootings in Buffalo
	d := datagen.Generate(spec)
	ua := uadb.FromXDB(d.X)
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	uaDB.Put(ua)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rng.Perm(spec.Cols)[:5]
		attrs := make([]string, len(idx))
		for j, k := range idx {
			attrs[j] = spec.ColName(k)
		}
		if _, err := uadb.Eval(kdb.ProjectQ{Input: kdb.Table{Name: "t"}, Attrs: attrs}, uaDB); err != nil {
			b.Fatal(err)
		}
		models.CertainSP(d.X, nil, idx)
	}
}

func BenchmarkFig16DatasetGeneration(b *testing.B) {
	spec := datagen.Specs()[5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := datagen.Generate(spec)
		d.UncertainRowFraction()
	}
}

// --- Figure 17: real queries overhead ---

func BenchmarkFig17RealQueries(b *testing.B) {
	rt := datagen.GenerateRealTables(1500, 0.05, 9)
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range rt.Tables() {
		uaDB.Put(uadb.FromXDB(x))
	}
	detCat := rewrite.DetCatalog(uaDB)
	front := rewrite.NewFrontend(rewrite.EncodeUADatabase(uaDB))
	for _, q := range datagen.RealQueries() {
		q := q
		b.Run(q.Name+"/Det", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.NewPlanner(detCat).Run(q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/UADB", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := front.Run(q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 18: utility ---

func BenchmarkFig18Utility(b *testing.B) {
	ud := datagen.GenerateUtility(1000, 8, 0.3, datagen.BGQP, 21)
	groundCat := engine.NewCatalog()
	groundCat.Put(ud.Ground)
	nulledCat := engine.NewCatalog()
	nulledCat.Put(ud.Nulled)
	query := "SELECT a0, a1, a2 FROM t WHERE a3 = 'c3_v0'"
	truth, err := engine.NewPlanner(groundCat).Run(query)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lib, err := libkin.Run(nulledCat, query)
		if err != nil {
			b.Fatal(err)
		}
		datagen.PrecisionRecall(lib, truth)
	}
}

// --- Figure 19: probabilistic databases ---

func BenchmarkFig19Probabilistic(b *testing.B) {
	cfg := experiments.DefaultFig19()
	cfg.Rows = 200
	cfg.Alternatives = []int{2, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig19(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 20/21: beyond set semantics ---

func BenchmarkFig20BagProjections(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Fig20(1, 3)
	}
}

func BenchmarkFig21AccessControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig21(1, 3)
	}
}

// --- Micro-benchmarks of the core machinery ---

func BenchmarkRewriteOverheadMicro(b *testing.B) {
	// The per-operator cost of the UA rewriting itself (not execution).
	env := setupPDBench(b, 0.01, 0.02)
	_ = env
	w := pdbench.Generate(pdbench.Config{SF: 0.01, Uncertainty: 0.02, Seed: 7})
	schemas := map[string]types.Schema{}
	for n, x := range w.Tables {
		schemas[n] = x.Schema
	}
	q := pdbench.Queries()[0].RA
	plan, err := rewrite.FromKDB(q, schemas)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.RewriteUA(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCTableSolver(b *testing.B) {
	ct := models.NewCTable(types.NewSchema("r", "a", "b"))
	ct.AddGround(types.Tuple{types.NewInt(1), types.NewInt(2)})
	sym := ctexact.FromCTable(ct)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctexact.CertainTuples(sym)
	}
}

func bname(prefix string, v float64) string {
	return prefix + "=" + types.NewFloat(v).String()
}
