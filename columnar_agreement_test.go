package repro_test

// Randomized columnar-sink agreement: DrainColumns — the result path that
// hands query output over as vectors and boxes rows only on demand — must
// materialize to byte-identical rows, in identical order, to the boxed Drain
// of the same lowered plan. Across fused and unfused lowering, at every DOP,
// under unlimited and governed memory budgets, on plain and UA-rewritten
// plans. This is the acceptance gate for the result sink: a columnar result
// is a representation change, never a semantics change.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/types"
)

// columnarBudgets are the memory regimes the sink suite runs under:
// unlimited, and a budget that engages the governor (under which fused
// chains decline and the sink must fall back to row draining cleanly).
func columnarBudgets() []int64 { return []int64{0, 32 << 20} }

// drainColumnsOpts lowers the plan, drains it through the columnar result
// sink, and materializes the result to rows.
func drainColumnsOpts(t *testing.T, plan algebra.Node, src physical.Source, opt physical.Options, what string) [][]types.Value {
	t.Helper()
	op, err := physical.LowerOpts(plan, src, opt)
	if err != nil {
		t.Fatalf("%s: lower: %v", what, err)
	}
	res, err := physical.DrainColumns(op)
	if err != nil {
		t.Fatalf("%s: drain columns: %v", what, err)
	}
	return res.Rows()
}

func TestColumnarResultAgreementRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	dir := t.TempDir()
	for trial := 0; trial < 120; trial++ {
		cat := typedAgreementCatalog(rng)
		g := &planGen{rng: rng, cat: cat}
		plan, _ := g.gen(1 + rng.Intn(3))

		want := drainOpts(t, plan, cat, physical.Options{DOP: 1}, "boxed serial")
		for _, fuse := range []bool{false, true} {
			for _, dop := range typedDOPs() {
				for _, budget := range columnarBudgets() {
					opt := physical.Options{DOP: dop, MorselSize: 64,
						MinParallelRows: 1, Fuse: fuse,
						MemBudget: budget, SpillDir: dir}
					got := drainColumnsOpts(t, plan, cat, opt, "columnar sink")
					mustMatchRows(t, got, want, "columnar sink vs boxed drain")
				}
			}
		}
	}
}

// TestColumnarResultAgreementUA runs UA-rewritten plans — trailing certainty
// column, least() certainty combination — through the columnar sink across
// the same fuse × DOP × budget grid against the boxed serial reference.
func TestColumnarResultAgreementUA(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	dir := t.TempDir()
	for trial := 0; trial < 120; trial++ {
		det := typedAgreementCatalog(rng)
		enc := engine.NewCatalog()
		for _, name := range det.Names() {
			enc.PutAs(name, rewrite.EncodeDeterministic(det.Get(name)))
		}
		g := &planGen{rng: rng, cat: det, raPlus: true}
		plan, _ := g.gen(1 + rng.Intn(3))
		ua, err := rewrite.RewriteUA(plan)
		if err != nil {
			t.Fatalf("rewrite: %v", err)
		}

		want := drainOpts(t, ua, rowSource{enc}, physical.Options{DOP: 1}, "boxed serial UA")
		for _, fuse := range []bool{false, true} {
			for _, dop := range typedDOPs() {
				for _, budget := range columnarBudgets() {
					opt := physical.Options{DOP: dop, MorselSize: 64,
						MinParallelRows: 1, Fuse: fuse,
						MemBudget: budget, SpillDir: dir}
					got := drainColumnsOpts(t, ua, enc, opt, "columnar sink UA")
					mustMatchRows(t, got, want, "columnar sink vs boxed drain UA")
				}
			}
		}
	}
}

// TestColumnarSinkEngages pins that the sink actually produces vectors where
// it should: a catalog scan passes its columns through untouched, a serial
// fused chain drains straight to projected vectors, and Rows() on a columnar
// result materializes once and caches.
func TestColumnarSinkEngages(t *testing.T) {
	cat := fusedTestCatalog()

	scan := &algebra.Scan{Table: "t", TblSchema: cat.Get("t").Schema}
	op, err := physical.LowerOpts(scan, cat, physical.Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := physical.DrainColumns(op)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols() == nil {
		t.Fatal("scan result is row-backed; want the table's columns through the sink")
	}
	if res.NumRows() != 200 {
		t.Fatalf("scan result has %d rows, want 200", res.NumRows())
	}
	if r1, r2 := res.Rows(), res.Rows(); &r1[0] != &r2[0] {
		t.Fatal("Rows() materialized twice; want the cached materialization")
	}

	fusedOp, err := physical.LowerOpts(fusedChainPlan(cat), cat,
		physical.Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err = physical.DrainColumns(fusedOp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols() == nil {
		t.Fatal("fused chain result is row-backed; want projected vectors")
	}
	if res.NumRows() != 100 {
		t.Fatalf("fused chain result has %d rows, want 100", res.NumRows())
	}
}
