package repro_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//  1. hash join vs nested-loop join in the engine (the equi-key extraction
//     in the planner and kdb evaluator),
//  2. the PTIME CNF-tautology check vs the exact active-domain solver (the
//     c-sound labeling shortcut of Section 4 vs full certainty),
//  3. tuple-level vs attribute-level labels (the Section 12 extension), and
//  4. K-relation (map-based) vs engine (slice-based) evaluation of the same
//     query — why the middleware targets a conventional executor.

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/attrua"
	"repro/internal/cond"
	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/pdbench"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

func ablationTables(n int, rng *rand.Rand) (*engine.Table, *engine.Table) {
	l := engine.NewTable(types.NewSchema("l", "k", "x"))
	r := engine.NewTable(types.NewSchema("r", "k", "y"))
	for i := 0; i < n; i++ {
		l.AppendVals(types.NewInt(rng.Int63n(int64(n/4+1))), types.NewInt(int64(i)))
		r.AppendVals(types.NewInt(rng.Int63n(int64(n/4+1))), types.NewInt(int64(i)))
	}
	return l, r
}

func BenchmarkAblationJoinHash(b *testing.B) {
	l, r := ablationTables(2000, rand.New(rand.NewSource(1)))
	cat := engine.NewCatalog()
	cat.Put(l)
	cat.Put(r)
	plan := &algebra.Join{
		Left:  &algebra.Scan{Table: "l", TblSchema: l.Schema},
		Right: &algebra.Scan{Table: "r", TblSchema: r.Schema},
		EquiL: []int{0}, EquiR: []int{0},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := execPlanTbl(plan, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJoinNestedLoop(b *testing.B) {
	l, r := ablationTables(2000, rand.New(rand.NewSource(1)))
	cat := engine.NewCatalog()
	cat.Put(l)
	cat.Put(r)
	plan := &algebra.Join{
		Left:  &algebra.Scan{Table: "l", TblSchema: l.Schema},
		Right: &algebra.Scan{Table: "r", TblSchema: r.Schema},
		Residual: algebra.Bin{Op: algebra.OpEq,
			L: algebra.Col{Idx: 0, Name: "k"}, R: algebra.Col{Idx: 2, Name: "k"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := execPlanTbl(plan, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func ablationConds(n int, rng *rand.Rand) []cond.Expr {
	out := make([]cond.Expr, n)
	for i := range out {
		x := cond.V("X")
		c1, c2 := cond.CI(rng.Int63n(5)), cond.CI(rng.Int63n(5))
		out[i] = cond.Or{
			cond.Cmp(x, cond.OpLe, c1),
			cond.Cmp(x, cond.OpGt, c2),
			cond.Cmp(cond.V("Y"), cond.OpEq, cond.CI(rng.Int63n(5))),
		}
	}
	return out
}

func BenchmarkAblationCNFCheck(b *testing.B) {
	conds := ablationConds(200, rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range conds {
			cond.CNFTautology(e)
		}
	}
}

func BenchmarkAblationExactSolver(b *testing.B) {
	conds := ablationConds(200, rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range conds {
			cond.Tautology(e)
		}
	}
}

func ablationXDB(n int, rng *rand.Rand) *models.XRelation {
	x := models.NewXRelation(types.NewSchema("R", "a", "b", "c"))
	for i := 0; i < n; i++ {
		base := types.Tuple{
			types.NewInt(rng.Int63n(20)), types.NewInt(rng.Int63n(20)), types.NewInt(rng.Int63n(20)),
		}
		if rng.Intn(4) == 0 {
			alt := base.Clone()
			alt[1] = types.NewInt(rng.Int63n(20) + 100)
			x.AddChoice(base, alt)
		} else {
			x.AddCertain(base)
		}
	}
	return x
}

func BenchmarkAblationTupleLevelLabels(b *testing.B) {
	x := ablationXDB(2000, rand.New(rand.NewSource(3)))
	db := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	db.Put(uadb.FromXDB(x))
	q := kdb.ProjectQ{Input: kdb.Table{Name: "R"}, Attrs: []string{"a", "c"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uadb.Eval(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAttrLevelLabels(b *testing.B) {
	x := ablationXDB(2000, rand.New(rand.NewSource(3)))
	rel := attrua.FromXDB(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attrua.CertainTuples(attrua.Project(rel, []int{0, 2}))
	}
}

func BenchmarkAblationKRelationEval(b *testing.B) {
	w := pdbench.Generate(pdbench.Config{SF: 0.02, Uncertainty: 0.05, Seed: 4})
	db := kdb.NewDatabase[int64](semiring.Nat)
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range w.Tables {
		uaDB.Put(uadb.FromXDB(x))
	}
	det := rewrite.DetCatalog(uaDB)
	for _, name := range det.Names() {
		db.Put(rewrite.RelationFromTable(det.Get(name)))
	}
	q := pdbench.Queries()[0].RA
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kdb.Eval(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEngineEval(b *testing.B) {
	w := pdbench.Generate(pdbench.Config{SF: 0.02, Uncertainty: 0.05, Seed: 4})
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range w.Tables {
		uaDB.Put(uadb.FromXDB(x))
	}
	det := rewrite.DetCatalog(uaDB)
	q := pdbench.Queries()[0].SQL
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := execSQLTbl(det, q); err != nil {
			b.Fatal(err)
		}
	}
}
