// Command uadb-server is the UA-DB middleware as a long-lived multi-session
// query server. It loads CSV tables once, then serves UA-SQL over TCP with
// the wire protocol of internal/server (4-byte length-prefixed frames,
// protocol version 2): clients that negotiate the "colbin" encoding in
// their hello receive query results as chunked binary column frames —
// header, CRC-checked column chunks, trailer — while JSON-only clients
// (or those that send no hello at all) get the v1 single-frame JSON
// responses unchanged. Each connection is a session with its own execution
// options (set op) and
// prepared statements, all sessions share one catalog and one plan cache,
// and -mem-budget is a server-wide memory budget — concurrent queries are
// admission-controlled so the sum of their grants never exceeds it, queueing
// (not failing) when the server is saturated and spilling within their
// grants exactly as one-shot -mem-budget queries would.
//
//	uadb-server -listen :7483 -table addr=addr.csv -table loc=loc.csv \
//	            -mem-budget 256M -query-budget 32M
//
// -dop and -fuse set the session defaults a client inherits until it sends
// its own (per-session set requests override per query run). -query-budget
// is the default admission ask per query (default: a quarter of the global
// budget). SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// running queries drain (10s grace), then stragglers are cancelled and
// their spill files cleaned.
//
// The Go client for this protocol is repro/internal/server/client.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/physical"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "uadb-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("uadb-server", flag.ContinueOnError)
	tables := cliutil.RegisterTables(fs)
	exec := cliutil.ExecFlagSpec{
		BudgetUsage: "server-wide memory budget shared by all concurrent queries, e.g. 256M (empty or 0 = unlimited)",
	}.Register(fs)
	listen := fs.String("listen", "127.0.0.1:7483", "TCP address to listen on")
	queryBudget := fs.String("query-budget", "", "default admission ask per query, e.g. 32M (empty = a quarter of -mem-budget)")
	spillDir := fs.String("spill-dir", "", "directory for spill runs (empty = system temp)")
	planCache := fs.Int("plan-cache", 0, "shared plan-cache entries (0 = default size, negative = disable)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period before in-flight queries are cancelled")
	if err := fs.Parse(args); err != nil {
		return err
	}

	front, err := cliutil.NewFrontend(*tables, exec)
	if err != nil {
		return err
	}
	global := front.Opts.MemBudget
	front.Opts.MemBudget = 0 // the global budget is the server's, not a per-query default
	qb, err := physical.ParseByteSize(*queryBudget)
	if err != nil {
		return fmt.Errorf("-query-budget: %w", err)
	}

	srv := server.New(server.Config{
		Front:        front,
		GlobalBudget: global,
		QueryBudget:  qb,
		SpillDir:     *spillDir,
		PlanCache:    *planCache,
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "uadb-server: listening on %s (budget %s)\n",
			*listen, budgetString(global))
		errc <- srv.ListenAndServe(*listen)
	}()

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "uadb-server: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "uadb-server: forced shutdown:", err)
		}
		return <-errc
	}
}

func budgetString(b int64) string {
	if b <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d bytes", b)
}
