package main

import (
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/server/client"
)

// TestServerSmoke is the binary's end-to-end sanity: start the server with
// a CSV table and a global budget, query it over TCP, then SIGTERM it and
// expect a clean exit with no spill files left behind.
func TestServerSmoke(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(csv, []byte("id,v\n1,10\n2,20\n3,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spillDir := t.TempDir()

	// Reserve an ephemeral port, free it, and hand it to the server. The
	// tiny reuse race is acceptable for a smoke test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-listen", addr,
			"-table", "t=" + csv,
			"-mem-budget", "1M",
			"-query-budget", "64K",
			"-spill-dir", spillDir,
		})
	}()

	var c *client.Client
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err = client.Dial(addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err := c.Query("SELECT t.id FROM t WHERE t.v > 15 ORDER BY t.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows()) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows()))
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Budget != 1<<20 {
		t.Fatalf("global budget = %d, want 1MiB", stats.Budget)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("server exited with %v, want clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files left after shutdown", len(ents))
	}
}
