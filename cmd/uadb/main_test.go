package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCSV drops a small table for the CLI to load.
func writeCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMainSmokeQuery is the CI start sanity for the uadb CLI: load a table,
// run one query end to end (through the UA rewrite and the physical engine),
// and see the certainty-annotated result.
func TestMainSmokeQuery(t *testing.T) {
	csv := writeCSV(t, "t.csv", "id,v\n1,10\n2,20\n3,30\n")
	var out strings.Builder
	var errOut strings.Builder
	err := run([]string{
		"-table", "t=" + csv,
		"-query", "SELECT t.id FROM t WHERE t.v > 15",
	}, strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(2 rows)") {
		t.Errorf("query output missing row count:\n%s", out.String())
	}
}

// TestMainSmokeStdinAndDOP: the stdin loop, the -dop flag, and inline
// per-query error reporting all work.
func TestMainSmokeStdinAndDOP(t *testing.T) {
	csv := writeCSV(t, "t.csv", "id,v\n1,10\n2,20\n")
	var out, errOut strings.Builder
	err := run([]string{"-dop", "2", "-table", "t=" + csv},
		strings.NewReader("SELECT t.id FROM t\nSELECT nope FROM missing\n\n"), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(2 rows)") {
		t.Errorf("stdin query output missing row count:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "error:") {
		t.Errorf("failing query must report inline on stderr, got:\n%s", errOut.String())
	}
}

// TestMainSmokeExplain: -explain prints the rewritten plan without running.
func TestMainSmokeExplain(t *testing.T) {
	csv := writeCSV(t, "t.csv", "id,v\n1,10\n")
	var out, errOut strings.Builder
	err := run([]string{"-table", "t=" + csv, "-explain",
		"-query", "SELECT t.id FROM t"}, strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("explain produced no output")
	}
}

// TestMainBadTableSpec: malformed -table specs fail with a clear error.
func TestMainBadTableSpec(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{"-table", "nope"}, strings.NewReader(""), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "bad -table") {
		t.Errorf("want bad -table error, got %v", err)
	}
}

// TestMainMemBudget: a query runs under a tiny -mem-budget (smaller than
// one row's estimate, so the sort genuinely evicts runs through the
// spilling path) with correct output, and a malformed budget fails with a
// clear error before any work.
func TestMainMemBudget(t *testing.T) {
	csv := writeCSV(t, "t.csv", "id,v\n1,10\n2,20\n3,30\n")
	var out, errOut strings.Builder
	err := run([]string{"-mem-budget", "100", "-table", "t=" + csv,
		"-query", "SELECT t.id FROM t ORDER BY t.v DESC",
	}, strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(3 rows)") {
		t.Errorf("budgeted query output missing row count:\n%s", out.String())
	}

	err = run([]string{"-mem-budget", "lots", "-table", "t=" + csv,
		"-query", "SELECT t.id FROM t"}, strings.NewReader(""), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "-mem-budget") {
		t.Errorf("want -mem-budget parse error, got %v", err)
	}
}
