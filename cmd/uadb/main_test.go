package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/types"
)

// writeCSV drops a small table for the CLI to load.
func writeCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMainSmokeQuery is the CI start sanity for the uadb CLI: load a table,
// run one query end to end (through the UA rewrite and the physical engine),
// and see the certainty-annotated result.
func TestMainSmokeQuery(t *testing.T) {
	csv := writeCSV(t, "t.csv", "id,v\n1,10\n2,20\n3,30\n")
	var out strings.Builder
	var errOut strings.Builder
	err := run([]string{
		"-table", "t=" + csv,
		"-query", "SELECT t.id FROM t WHERE t.v > 15",
	}, strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(2 rows)") {
		t.Errorf("query output missing row count:\n%s", out.String())
	}
}

// TestMainSmokeStdinAndDOP: the stdin loop, the -dop flag, and inline
// per-query error reporting all work.
func TestMainSmokeStdinAndDOP(t *testing.T) {
	csv := writeCSV(t, "t.csv", "id,v\n1,10\n2,20\n")
	var out, errOut strings.Builder
	err := run([]string{"-dop", "2", "-table", "t=" + csv},
		strings.NewReader("SELECT t.id FROM t\nSELECT nope FROM missing\n\n"), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(2 rows)") {
		t.Errorf("stdin query output missing row count:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "error:") {
		t.Errorf("failing query must report inline on stderr, got:\n%s", errOut.String())
	}
}

// TestMainSmokeExplain: -explain prints the rewritten plan without running.
func TestMainSmokeExplain(t *testing.T) {
	csv := writeCSV(t, "t.csv", "id,v\n1,10\n")
	var out, errOut strings.Builder
	err := run([]string{"-table", "t=" + csv, "-explain",
		"-query", "SELECT t.id FROM t"}, strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("explain produced no output")
	}
}

// TestMainBadTableSpec: malformed -table specs fail with a clear error.
func TestMainBadTableSpec(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{"-table", "nope"}, strings.NewReader(""), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "bad -table") {
		t.Errorf("want bad -table error, got %v", err)
	}
}

// TestMainMemBudget: a query runs under a tiny -mem-budget (smaller than
// one row's estimate, so the sort genuinely evicts runs through the
// spilling path) with correct output, and a malformed budget fails with a
// clear error before any work.
func TestMainMemBudget(t *testing.T) {
	csv := writeCSV(t, "t.csv", "id,v\n1,10\n2,20\n3,30\n")
	var out, errOut strings.Builder
	err := run([]string{"-mem-budget", "100", "-table", "t=" + csv,
		"-query", "SELECT t.id FROM t ORDER BY t.v DESC",
	}, strings.NewReader(""), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(3 rows)") {
		t.Errorf("budgeted query output missing row count:\n%s", out.String())
	}

	err = run([]string{"-mem-budget", "lots", "-table", "t=" + csv,
		"-query", "SELECT t.id FROM t"}, strings.NewReader(""), &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "-mem-budget") {
		t.Errorf("want -mem-budget parse error, got %v", err)
	}
}

// TestMainRemoteConnect: -connect runs the query loop against a live
// uadb-server, CSV output streams off the decoded wire columns, and the
// bytes match the local -csv path over the same data.
func TestMainRemoteConnect(t *testing.T) {
	front := rewrite.NewFrontend(engine.NewCatalog())
	tbl := engine.NewTable(types.NewSchema("t", "id", "v"))
	for i := 1; i <= 3; i++ {
		tbl.AppendVals(types.NewInt(int64(i)), types.NewInt(int64(i*10)))
	}
	front.Enc.Put(rewrite.EncodeDeterministic(tbl))
	srv := server.New(server.Config{Front: front})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	const q = "SELECT t.id FROM t WHERE t.v > 15 ORDER BY t.id"
	var out, errOut strings.Builder
	if err := run([]string{"-connect", addr, "-csv", "-query", q},
		strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	want := "id,__cert\n2,1\n3,1\n"
	if out.String() != want {
		t.Errorf("remote CSV = %q, want %q", out.String(), want)
	}

	// The stdin loop and the table rendering work remotely too.
	out.Reset()
	if err := run([]string{"-connect", addr},
		strings.NewReader(q+"\n\n"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(2 rows)") {
		t.Errorf("remote stdin output missing row count:\n%s", out.String())
	}

	// Local-only flags are rejected up front with a clear error.
	if err := run([]string{"-connect", addr, "-table", "t=x.csv", "-query", q},
		strings.NewReader(""), &out, &errOut); err == nil || !strings.Contains(err.Error(), "-table") {
		t.Errorf("want -table/-connect conflict error, got %v", err)
	}
	if err := run([]string{"-connect", addr, "-explain", "-query", q},
		strings.NewReader(""), &out, &errOut); err == nil || !strings.Contains(err.Error(), "-explain") {
		t.Errorf("want -explain/-connect conflict error, got %v", err)
	}
}
