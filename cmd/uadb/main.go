// Command uadb is the UA-DB middleware as a command-line tool: load CSV
// tables, issue UA-SQL queries (including the model annotations IS TI /
// IS X / IS CTABLE of Section 9.2), and read results whose last column marks
// each row certain (1) or uncertain (0).
//
//	uadb -table addr=addr.csv -table loc=loc.csv \
//	     -query "SELECT a.id, l.state FROM addr a, loc l WHERE ..."
//
// Plain CSV tables are treated as deterministic (every row certain). Tables
// referenced with a model annotation in the query are read from the same
// -table set and encoded on the fly. With no -query, queries are read from
// stdin, one per line (exit with an empty line or EOF). -dop caps the
// physical engine's parallelism (0 = one worker per CPU, 1 = serial).
// -mem-budget caps each query's pipeline-breaker working set (e.g. "64M",
// "2G", or plain bytes; 0 = unlimited): sorts, aggregates, and join builds
// that exceed the budget spill to temp files and stream back, so one big
// GROUP BY or join cannot OOM the process. -fuse compiles each
// scan→filter→project (and equi-join probe) chain into one fused loop over
// the columnar storage — an execution strategy switch only: results are
// byte-identical with and without it. -csv streams results as CSV in engine
// order, straight from the columnar result sink when the plan produces one
// (no boxed result rows at all).
//
// For a long-lived multi-session surface over the same engine, see
// cmd/uadb-server.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/csvio"
	"repro/internal/engine"
	"repro/internal/rewrite"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uadb:", err)
		os.Exit(1)
	}
}

// run is the whole CLI behind a testable seam: flags in args, queries from
// stdin when -query is absent, results on stdout. Per-query execution errors
// are reported inline on stderr and do not abort the session; setup errors
// return.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uadb", flag.ContinueOnError)
	tables := cliutil.RegisterTables(fs)
	exec := cliutil.RegisterExec(fs)
	query := fs.String("query", "", "UA-SQL query; omit to read from stdin")
	explain := fs.Bool("explain", false, "print the rewritten logical plan instead of executing")
	csvOut := fs.Bool("csv", false, "stream results as CSV (unsorted engine order, straight from the columnar result sink when the plan allows)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	front, err := cliutil.NewFrontend(*tables, exec)
	if err != nil {
		return err
	}

	if *explain && *query != "" {
		plan, err := front.Explain(*query)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, plan)
		return nil
	}
	if *query != "" {
		runQuery(front, *query, *csvOut, stdout, stderr)
		return nil
	}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(stdout, "uadb> enter queries, empty line to quit")
	for {
		fmt.Fprint(stdout, "uadb> ")
		if !sc.Scan() {
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			return nil
		}
		runQuery(front, line, *csvOut, stdout, stderr)
	}
}

func runQuery(front *rewrite.Frontend, q string, csvOut bool, stdout, stderr io.Writer) {
	res, err := front.Query(context.Background(), q, front.Opts)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return
	}
	if csvOut {
		// CSV mode streams straight from the columnar result sink: when the
		// plan produces vectors, no result row is ever boxed on the way out.
		if err := csvio.WriteResult(res, stdout); err != nil {
			fmt.Fprintln(stderr, "error:", err)
		}
		return
	}
	tbl := engine.ResultTable(res)
	fmt.Fprint(stdout, tbl)
	fmt.Fprintf(stdout, "(%d rows)\n", tbl.NumRows())
}
