// Command uadb is the UA-DB middleware as a command-line tool: load CSV
// tables, issue UA-SQL queries (including the model annotations IS TI /
// IS X / IS CTABLE of Section 9.2), and read results whose last column marks
// each row certain (1) or uncertain (0).
//
//	uadb -table addr=addr.csv -table loc=loc.csv \
//	     -query "SELECT a.id, l.state FROM addr a, loc l WHERE ..."
//
// Plain CSV tables are treated as deterministic (every row certain). Tables
// referenced with a model annotation in the query are read from the same
// -table set and encoded on the fly. With no -query, queries are read from
// stdin, one per line (exit with an empty line or EOF). -dop caps the
// physical engine's parallelism (0 = one worker per CPU, 1 = serial).
// -mem-budget caps each query's pipeline-breaker working set (e.g. "64M",
// "2G", or plain bytes; 0 = unlimited): sorts, aggregates, and join builds
// that exceed the budget spill to temp files and stream back, so one big
// GROUP BY or join cannot OOM the process. -fuse compiles each
// scan→filter→project (and equi-join probe) chain into one fused loop over
// the columnar storage — an execution strategy switch only: results are
// byte-identical with and without it. -csv streams results as CSV in engine
// order, straight from the columnar result sink when the plan produces one
// (no boxed result rows at all).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/csvio"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
)

type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uadb:", err)
		os.Exit(1)
	}
}

// run is the whole CLI behind a testable seam: flags in args, queries from
// stdin when -query is absent, results on stdout. Per-query execution errors
// are reported inline on stderr and do not abort the session; setup errors
// return.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uadb", flag.ContinueOnError)
	var tables tableFlags
	fs.Var(&tables, "table", "name=path.csv (repeatable)")
	query := fs.String("query", "", "UA-SQL query; omit to read from stdin")
	explain := fs.Bool("explain", false, "print the rewritten logical plan instead of executing")
	dop := fs.Int("dop", 0, "degree of parallelism: 0 = GOMAXPROCS, 1 = serial engine")
	memBudget := fs.String("mem-budget", "", "per-query memory budget for sorts/aggregates/joins, e.g. 64M or 2G (empty or 0 = unlimited, never spill)")
	fuse := fs.Bool("fuse", false, "compile scan→filter→project(→probe) chains into fused single-loop pipelines (identical results, faster on columnar tables)")
	csvOut := fs.Bool("csv", false, "stream results as CSV (unsorted engine order, straight from the columnar result sink when the plan allows)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	budget, err := physical.ParseByteSize(*memBudget)
	if err != nil {
		return fmt.Errorf("-mem-budget: %w", err)
	}

	front := rewrite.NewFrontend(engine.NewCatalog())
	front.DOP = *dop
	front.MemBudget = budget
	front.Fuse = *fuse
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -table %q, want name=path.csv", spec)
		}
		t, err := csvio.Load(name, path)
		if err != nil {
			return err
		}
		// Register raw (for model annotations) and deterministic-encoded
		// (for direct references).
		front.Raw.Put(t)
		front.Enc.Put(rewrite.EncodeDeterministic(t))
	}

	if *explain && *query != "" {
		plan, err := front.Explain(*query)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, plan)
		return nil
	}
	if *query != "" {
		runQuery(front, *query, *csvOut, stdout, stderr)
		return nil
	}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(stdout, "uadb> enter queries, empty line to quit")
	for {
		fmt.Fprint(stdout, "uadb> ")
		if !sc.Scan() {
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			return nil
		}
		runQuery(front, line, *csvOut, stdout, stderr)
	}
}

func runQuery(front *rewrite.Frontend, q string, csvOut bool, stdout, stderr io.Writer) {
	if csvOut {
		// CSV mode streams straight from the columnar result sink: when the
		// plan produces vectors, no result row is ever boxed on the way out.
		res, err := front.RunColumns(q)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return
		}
		if err := csvio.WriteResult(res, stdout); err != nil {
			fmt.Fprintln(stderr, "error:", err)
		}
		return
	}
	res, err := front.Run(q)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return
	}
	fmt.Fprint(stdout, res)
	fmt.Fprintf(stdout, "(%d rows)\n", res.NumRows())
}
