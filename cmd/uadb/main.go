// Command uadb is the UA-DB middleware as a command-line tool: load CSV
// tables, issue UA-SQL queries (including the model annotations IS TI /
// IS X / IS CTABLE of Section 9.2), and read results whose last column marks
// each row certain (1) or uncertain (0).
//
//	uadb -table addr=addr.csv -table loc=loc.csv \
//	     -query "SELECT a.id, l.state FROM addr a, loc l WHERE ..."
//
// Plain CSV tables are treated as deterministic (every row certain). Tables
// referenced with a model annotation in the query are read from the same
// -table set and encoded on the fly. With no -query, queries are read from
// stdin, one per line (exit with an empty line or EOF). -dop caps the
// physical engine's parallelism (0 = one worker per CPU, 1 = serial).
// -mem-budget caps each query's pipeline-breaker working set (e.g. "64M",
// "2G", or plain bytes; 0 = unlimited): sorts, aggregates, and join builds
// that exceed the budget spill to temp files and stream back, so one big
// GROUP BY or join cannot OOM the process. -fuse compiles each
// scan→filter→project (and equi-join probe) chain into one fused loop over
// the columnar storage — an execution strategy switch only: results are
// byte-identical with and without it. -csv streams results as CSV in engine
// order, straight from the columnar result sink when the plan produces one
// (no boxed result rows at all).
//
// With -connect host:port the tool runs the same query loop against a
// running uadb-server instead of loading tables locally: the client
// negotiates the binary columnar result encoding (falling back to JSON
// against older servers), -dop / -mem-budget / -fuse become session
// options, and -csv streams straight off the decoded wire columns.
//
// For a long-lived multi-session surface over the same engine, see
// cmd/uadb-server.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/csvio"
	"repro/internal/engine"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "uadb:", err)
		os.Exit(1)
	}
}

// run is the whole CLI behind a testable seam: flags in args, queries from
// stdin when -query is absent, results on stdout. Per-query execution errors
// are reported inline on stderr and do not abort the session; setup errors
// return.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("uadb", flag.ContinueOnError)
	tables := cliutil.RegisterTables(fs)
	exec := cliutil.RegisterExec(fs)
	query := fs.String("query", "", "UA-SQL query; omit to read from stdin")
	explain := fs.Bool("explain", false, "print the rewritten logical plan instead of executing")
	csvOut := fs.Bool("csv", false, "stream results as CSV (unsorted engine order, straight from the columnar result sink when the plan allows)")
	connect := fs.String("connect", "", "query a running uadb-server at this address instead of loading tables locally (results arrive as binary column chunks when the server speaks them)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect != "" {
		return runRemote(*connect, *tables, exec, *query, *explain, *csvOut, stdin, stdout, stderr)
	}
	front, err := cliutil.NewFrontend(*tables, exec)
	if err != nil {
		return err
	}

	if *explain && *query != "" {
		plan, err := front.Explain(*query)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, plan)
		return nil
	}
	if *query != "" {
		runQuery(front, *query, *csvOut, stdout, stderr)
		return nil
	}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(stdout, "uadb> enter queries, empty line to quit")
	for {
		fmt.Fprint(stdout, "uadb> ")
		if !sc.Scan() {
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			return nil
		}
		runQuery(front, line, *csvOut, stdout, stderr)
	}
}

// runRemote is the -connect mode: the same query loop, but over a running
// uadb-server. The client negotiates the binary columnar encoding, so CSV
// output streams straight off the decoded wire columns — a JSON-only server
// downgrades transparently and the bytes out are identical.
func runRemote(addr string, tables cliutil.TableFlags, exec *cliutil.ExecFlags, query string, explain, csvOut bool, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(tables) > 0 {
		return fmt.Errorf("-table loads local CSVs and cannot be combined with -connect (the server owns the catalog)")
	}
	if explain {
		return fmt.Errorf("-explain runs locally and cannot be combined with -connect")
	}
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	var opts server.SessionOpts
	if dop := exec.DOP(); dop != 0 {
		opts.DOP = &dop
	}
	if fuse := exec.Fuse(); fuse {
		opts.Fuse = &fuse
	}
	if mb := exec.MemBudgetRaw(); mb != "" {
		opts.MemBudget = &mb
	}
	if ab := exec.AttrBounds(); ab {
		opts.AttrBounds = &ab
	}
	if opts != (server.SessionOpts{}) {
		if err := c.Set(opts); err != nil {
			return err
		}
	}

	if query != "" {
		remoteQuery(c, query, csvOut, stdout, stderr)
		return nil
	}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintf(stdout, "uadb> connected to %s (%s results), empty line to quit\n", addr, c.Encoding())
	for {
		fmt.Fprint(stdout, "uadb> ")
		if !sc.Scan() {
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			return nil
		}
		remoteQuery(c, line, csvOut, stdout, stderr)
	}
}

func remoteQuery(c *client.Client, q string, csvOut bool, stdout, stderr io.Writer) {
	res, err := c.Query(q)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return
	}
	if csvOut {
		// Columns() is the decoded wire chunks themselves on a colbin
		// session; no result row is boxed on the way to the CSV writer.
		if err := csvio.WriteColumns(res.Schema, res.Columns(), stdout); err != nil {
			fmt.Fprintln(stderr, "error:", err)
		}
		return
	}
	tbl := engine.NewTable(types.NewSchema("", res.Schema...))
	for _, row := range res.Rows() {
		tbl.Append(row)
	}
	fmt.Fprint(stdout, tbl)
	fmt.Fprintf(stdout, "(%d rows)\n", tbl.NumRows())
}

func runQuery(front *rewrite.Frontend, q string, csvOut bool, stdout, stderr io.Writer) {
	res, err := front.Query(context.Background(), q, front.Opts)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return
	}
	if csvOut {
		// CSV mode streams straight from the columnar result sink: when the
		// plan produces vectors, no result row is ever boxed on the way out.
		if err := csvio.WriteResult(res, stdout); err != nil {
			fmt.Fprintln(stderr, "error:", err)
		}
		return
	}
	tbl := engine.ResultTable(res)
	fmt.Fprint(stdout, tbl)
	fmt.Fprintf(stdout, "(%d rows)\n", tbl.NumRows())
}
