// Command uadb is the UA-DB middleware as a command-line tool: load CSV
// tables, issue UA-SQL queries (including the model annotations IS TI /
// IS X / IS CTABLE of Section 9.2), and read results whose last column marks
// each row certain (1) or uncertain (0).
//
//	uadb -table addr=addr.csv -table loc=loc.csv \
//	     -query "SELECT a.id, l.state FROM addr a, loc l WHERE ..."
//
// Plain CSV tables are treated as deterministic (every row certain). Tables
// referenced with a model annotation in the query are read from the same
// -table set and encoded on the fly. With no -query, queries are read from
// stdin, one per line (exit with an empty line or EOF).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/csvio"
	"repro/internal/engine"
	"repro/internal/rewrite"
)

type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var tables tableFlags
	flag.Var(&tables, "table", "name=path.csv (repeatable)")
	query := flag.String("query", "", "UA-SQL query; omit to read from stdin")
	explain := flag.Bool("explain", false, "print the rewritten logical plan instead of executing")
	flag.Parse()

	front := rewrite.NewFrontend(engine.NewCatalog())
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -table %q, want name=path.csv", spec))
		}
		t, err := csvio.Load(name, path)
		if err != nil {
			fatal(err)
		}
		// Register raw (for model annotations) and deterministic-encoded
		// (for direct references).
		front.Raw.Put(t)
		front.Enc.Put(rewrite.EncodeDeterministic(t))
	}

	if *explain && *query != "" {
		plan, err := front.Explain(*query)
		if err != nil {
			fatal(err)
		}
		fmt.Println(plan)
		return
	}
	if *query != "" {
		runQuery(front, *query)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("uadb> enter queries, empty line to quit")
	for {
		fmt.Print("uadb> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			return
		}
		runQuery(front, line)
	}
}

func runQuery(front *rewrite.Frontend, q string) {
	res, err := front.Run(q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Print(res)
	fmt.Printf("(%d rows)\n", res.NumRows())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uadb:", err)
	os.Exit(1)
}
