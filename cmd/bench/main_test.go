package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/physbench"
)

// stubSuite replaces the real (seconds-per-entry) measurement suites with
// canned results scaled by factor, restoring them on cleanup. The gate's
// flag parsing, baseline IO, comparison, and verdicts all still run for
// real. The out-of-core stub records the budget it was invoked with in
// oocBudget (0 = never invoked).
var oocBudget int64

func stubSuite(t *testing.T, factor float64) {
	t.Helper()
	orig, origOOC, origSrv := measure, measureOOC, measureServer
	oocBudget = 0
	measureServer = func(n int) ([]physbench.Result, error) {
		return []physbench.Result{
			{Op: "server-roundtrip/json", Rows: n, NsPerOp: 9000, RowsPerSec: 1e6 * factor},
			{Op: "server-roundtrip/colbin", Rows: n, NsPerOp: 2000, RowsPerSec: 4.5e6 * factor},
		}, nil
	}
	measure = func(n, dop int) ([]physbench.Result, error) {
		rs := []physbench.Result{
			{Op: "scan-filter-project/batch", Rows: n, NsPerOp: 1000, RowsPerSec: 1e7 * factor},
			{Op: "scan-filter-project/row", Rows: n, NsPerOp: 3000, RowsPerSec: 3e6 * factor},
			{Op: "scan-filter-project/par", Rows: n, DOP: dop, NsPerOp: 500, RowsPerSec: 2e7 * factor},
		}
		return rs, nil
	}
	measureOOC = func(n int, budget int64) ([]physbench.Result, error) {
		oocBudget = budget
		return []physbench.Result{
			{Op: "sort-oocore/spill", Rows: n, NsPerOp: 4000, RowsPerSec: 2.5e6 * factor},
		}, nil
	}
	t.Cleanup(func() { measure, measureOOC, measureServer = orig, origOOC, origSrv })
}

// TestMainSmokeGate is the CI start sanity for the bench CLI's regression
// gate: `bench update` writes a baseline, `bench check` against it passes,
// and a slower rerun fails with a regression verdict.
func TestMainSmokeGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")

	stubSuite(t, 1.0)
	var out strings.Builder
	if err := runGate("update", []string{
		"-physrows", "2000", "-dop", "2", "-baseline", baseline}, &out); err != nil {
		t.Fatalf("update: %v", err)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("update wrote no baseline: %v", err)
	}

	out.Reset()
	fresh := filepath.Join(dir, "fresh.json")
	if err := runGate("check", []string{
		"-physrows", "2000", "-dop", "2", "-baseline", baseline,
		"-out", fresh}, &out); err != nil {
		t.Fatalf("check against own update failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "gate passed") {
		t.Errorf("check output missing verdict:\n%s", out.String())
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("check -out wrote no results: %v", err)
	}

	// A current run at 40% of baseline throughput must trip the 25% gate.
	stubSuite(t, 0.4)
	out.Reset()
	err := runGate("check", []string{
		"-physrows", "2000", "-dop", "2", "-baseline", baseline}, &out)
	if err == nil || !strings.Contains(err.Error(), "regression gate failed") {
		t.Errorf("regressed rerun must fail the gate, got %v", err)
	}

	// ... but is fine under a loose tolerance.
	out.Reset()
	if err := runGate("check", []string{
		"-physrows", "2000", "-dop", "2", "-baseline", baseline,
		"-tolerance", "0.7"}, &out); err != nil {
		t.Errorf("loose tolerance must pass, got %v", err)
	}
}

// TestMainCheckAllSkippedFails: a gate that skipped every baseline entry
// compared nothing and must fail, not pass vacuously — e.g. after a rerun
// at the wrong -physrows, which silently mismatches every entry's row count.
func TestMainCheckAllSkippedFails(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")

	stubSuite(t, 1.0)
	var out strings.Builder
	if err := runGate("update", []string{
		"-physrows", "2000", "-dop", "2", "-baseline", baseline}, &out); err != nil {
		t.Fatalf("update: %v", err)
	}

	// Rerun at a different input size: every entry row-count-mismatches.
	out.Reset()
	err := runGate("check", []string{
		"-physrows", "4000", "-dop", "2", "-baseline", baseline}, &out)
	if err == nil || !strings.Contains(err.Error(), "compared nothing") {
		t.Errorf("all-skipped gate must fail with a compared-nothing error, got %v\n%s",
			err, out.String())
	}
	if !strings.Contains(out.String(), "compared 0 of") {
		t.Errorf("report missing skip summary:\n%s", out.String())
	}
}

// TestMainGateMemBudget: `bench update -mem-budget` folds the out-of-core
// entries into the baseline, and a matching `check` compares them; without
// the flag the spill workloads never run.
func TestMainGateMemBudget(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")

	stubSuite(t, 1.0)
	var out strings.Builder
	if err := runGate("update", []string{
		"-physrows", "2000", "-dop", "2", "-mem-budget", "32M",
		"-baseline", baseline}, &out); err != nil {
		t.Fatalf("update: %v", err)
	}
	if oocBudget != 32<<20 {
		t.Fatalf("out-of-core suite ran at budget %d, want 32M", oocBudget)
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "sort-oocore/spill") {
		t.Fatalf("baseline missing the spill entry:\n%s", raw)
	}

	out.Reset()
	if err := runGate("check", []string{
		"-physrows", "2000", "-dop", "2", "-mem-budget", "32M",
		"-baseline", baseline}, &out); err != nil {
		t.Fatalf("check with spill entries failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "sort-oocore/spill") {
		t.Errorf("check report missing the spill entry:\n%s", out.String())
	}

	// Without -mem-budget the spill workloads are skipped entirely and the
	// stale baseline entry is reported as a skip, not a failure.
	stubSuite(t, 1.0)
	out.Reset()
	if err := runGate("check", []string{
		"-physrows", "2000", "-dop", "2", "-baseline", baseline}, &out); err != nil {
		t.Fatalf("check without -mem-budget failed: %v\n%s", err, out.String())
	}
	if oocBudget != 0 {
		t.Errorf("out-of-core suite ran without -mem-budget (budget %d)", oocBudget)
	}
}

// TestMainSummary: `bench summary` renders an existing results file as the
// suite table — including the fused-vs-typed footer CI greps into its
// artifact — without invoking any measurement.
func TestMainSummary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.json")
	rs := []physbench.Result{
		{Op: "scan-filter-project/batch", Rows: 2000, NsPerOp: 3000, RowsPerSec: 1e7},
		{Op: "scan-filter-project/typed", Rows: 2000, NsPerOp: 2000, RowsPerSec: 1.5e7},
		{Op: "scan-filter-project/fused", Rows: 2000, NsPerOp: 1000, RowsPerSec: 3e7},
	}
	if err := physbench.WriteJSON(path, rs); err != nil {
		t.Fatal(err)
	}

	stubSuite(t, 1.0) // must NOT be consulted: summary only formats
	var out strings.Builder
	if err := runSummary([]string{"-baseline", path}, &out); err != nil {
		t.Fatalf("summary: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "scan-filter-project fused-vs-typed: 2.00x") {
		t.Errorf("summary missing fused-vs-typed footer:\n%s", got)
	}
	if oocBudget != 0 {
		t.Errorf("summary must not measure, but the out-of-core stub ran")
	}

	if err := runSummary([]string{"-baseline", filepath.Join(dir, "absent.json")}, &out); err == nil {
		t.Error("summary with a missing file must error")
	}
}

// TestMainCheckMissingBaseline: a helpful error pointing at `bench update`,
// before any measurement is spent.
func TestMainCheckMissingBaseline(t *testing.T) {
	stubSuite(t, 1.0)
	var out strings.Builder
	err := runGate("check", []string{
		"-physrows", "2000", "-baseline", filepath.Join(t.TempDir(), "absent.json")}, &out)
	if err == nil || !strings.Contains(err.Error(), "bench update") {
		t.Errorf("missing baseline must point at `bench update`, got %v", err)
	}
}
