// Command bench regenerates the paper's evaluation tables and figures
// (Section 11) plus the physical engine's operator microbenchmarks. Run
// with no arguments for everything, or name experiments:
//
//	bench fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 physical
//
// Flags scale the workloads; the defaults finish in a few minutes on one
// core. Output is the textual form of each figure's data series; the
// "physical" suite additionally writes machine-readable results (op, rows,
// ns/op, allocs/op) to -physout so the repo's perf trajectory is tracked in
// version control.
//
// Two subcommands manage that committed baseline as a regression gate:
//
//	bench check    rerun the physical suite and compare rows_per_sec against
//	               the committed BENCH_physical.json; exit 1 if any pipeline
//	               regressed by more than -tolerance (default 25%)
//	bench update   rerun the suite and rewrite the baseline in place — run it
//	               after deliberate perf-relevant changes and commit the diff
//	bench summary  no remeasurement: render an already-written results file
//	               (-baseline, e.g. the check run's -out) as the aligned
//	               suite table with its speedup footers
//
// The suite's "/fused" entries lower the same chain-shaped plans with
// Options.Fuse and are compared against the "/typed" operator trees they
// collapse; the fused-vs-typed footer lines in `update` and `summary`
// output are the throughput claim for the fused pipeline compiler.
//
// With -mem-budget (e.g. "32M", or "auto" for a quarter of the data), the
// physical run and both gate subcommands additionally measure the
// out-of-core spill workloads — sort, aggregate, and join at data ≫ budget
// through the memory-governed spilling engine. Their throughput is
// disk-bound as well as CPU-bound, so regenerate their baseline entries on
// an idle machine before trusting a regression verdict.
//
// CI runs `bench check -mem-budget 32M` on every PR.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/physbench"
	"repro/internal/physical"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && (args[0] == "check" || args[0] == "update") {
		if err := runGate(args[0], args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) > 0 && args[0] == "summary" {
		if err := runSummary(args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	sf := flag.Float64("sf", 0.05, "PDBench scale factor for fig11-13 (1.0 = 60k lineitems)")
	quick := flag.Bool("quick", false, "shrink all workloads for a fast smoke run")
	physRows := flag.Int("physrows", 1000000, "input rows for the physical operator suite")
	physOut := flag.String("physout", "BENCH_physical.json", "path for the physical suite's JSON results")
	exec := benchExecFlags(flag.CommandLine, "also run the out-of-core spill workloads at this budget, e.g. 32M (empty = skip them; 'auto' = a quarter of the data)")
	flag.Parse()

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	all := len(want) == 0
	run := func(id string) bool { return all || want[id] }

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	if run("fig10") {
		cfg := experiments.DefaultFig10()
		if *quick {
			cfg.Rows, cfg.MaxOps, cfg.QueriesPerOp = 20, 5, 3
		}
		rep, _ := experiments.Fig10(cfg)
		fmt.Println(rep)
	}

	var pdRows []experiments.PDBenchRow
	if run("fig11") || run("fig12") || run("fig13") {
		cfg := experiments.DefaultPDBench()
		cfg.SF = *sf
		if *quick {
			cfg.SF = 0.01
			cfg.Uncertainties = []float64{0.02, 0.30}
		}
		rep, rows, err := experiments.Fig11(cfg)
		if err != nil {
			fail(err)
		}
		pdRows = rows
		if run("fig11") {
			fmt.Println(rep)
		}
	}
	if run("fig12") {
		fmt.Println(experiments.Fig12(pdRows))
	}
	if run("fig13") {
		fmt.Println(experiments.Fig13(pdRows))
	}

	if run("fig14") {
		cfg := experiments.DefaultPDBench()
		sfs := []float64{0.01, 0.05, 0.2}
		if *quick {
			sfs = []float64{0.01, 0.02}
		}
		rep, _, err := experiments.Fig14(sfs, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if run("fig15") {
		cfg := experiments.DefaultFig15()
		if *quick {
			cfg.TrialsPerK, cfg.Points = 3, 4
		}
		fmt.Println(experiments.Fig15(cfg))
	}

	if run("fig16") {
		fmt.Println(experiments.Fig16())
	}

	if run("fig17") {
		rows := 3000
		if *quick {
			rows = 500
		}
		rep, _, err := experiments.Fig17(rows, 0.05, 9)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if run("fig18") {
		cfg := experiments.DefaultFig18()
		if *quick {
			cfg.Rows = 400
			cfg.Uncertainties = []float64{0, 0.3, 0.5}
		}
		rep, _, err := experiments.Fig18(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if run("fig19") {
		cfg := experiments.DefaultFig19()
		if *quick {
			cfg.Rows = 200
			cfg.Alternatives = []int{2, 10}
		}
		rep, _, err := experiments.Fig19(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if run("fig20") {
		trials := 5
		if *quick {
			trials = 2
		}
		fmt.Println(experiments.Fig20(trials, 3))
	}

	if run("fig21") {
		trials := 5
		if *quick {
			trials = 2
		}
		fmt.Println(experiments.Fig21(trials, 3))
	}

	if run("physical") {
		rows := *physRows
		if *quick {
			rows = 10000
		}
		results, err := physbench.Suite(rows, exec.DOP())
		if err != nil {
			fail(err)
		}
		if ooc, err := outOfCoreResults(exec.MemBudgetRaw(), rows); err != nil {
			fail(err)
		} else {
			results = append(results, ooc...)
		}
		if srvRes, err := measureServer(rows); err != nil {
			fail(err)
		} else {
			results = append(results, srvRes...)
		}
		fmt.Println("Physical operator suite (batch engine vs row-at-a-time reference)")
		fmt.Print(physbench.Format(results))
		if err := physbench.WriteJSON(*physOut, results); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *physOut)
	}
}

// benchExecFlags registers the shared -dop / -mem-budget flags with the
// suite's usage semantics (per-entry DOP gating; "auto" budgets) on the
// given flag set.
func benchExecFlags(fs *flag.FlagSet, budgetUsage string) *cliutil.ExecFlags {
	return cliutil.ExecFlagSpec{
		DOPUsage:    "workers for the suite's parallel entries (0 = GOMAXPROCS; 1 skips them)",
		BudgetUsage:  budgetUsage,
		NoFuse:       true,
		NoAttrBounds: true,
	}.Register(fs)
}

// outOfCoreResults runs the spilling workloads when a -mem-budget was
// asked for: "" skips them, "auto" derives a quarter-of-data budget, any
// other value parses as a byte size (64M, 2G, plain bytes).
func outOfCoreResults(budgetFlag string, rows int) ([]physbench.Result, error) {
	if budgetFlag == "" {
		return nil, nil
	}
	var budget int64
	if budgetFlag != "auto" {
		var err error
		budget, err = physical.ParseByteSize(budgetFlag)
		if err != nil {
			return nil, fmt.Errorf("-mem-budget: %w", err)
		}
		if budget == 0 {
			return nil, nil
		}
	}
	return measureOOC(rows, budget)
}

// measure runs the physical suite; a seam so the gate's flag/IO/verdict
// paths are testable without ~20s of real measurement per invocation.
// measureOOC is the same seam for the out-of-core spill workloads, and
// measureServer for the wire-protocol round-trip pair.
var (
	measure       = physbench.Suite
	measureOOC    = physbench.OutOfCore
	measureServer = physbench.ServerRoundTrip
)

// runGate implements `bench check` and `bench update`: rerun the physical
// suite and either gate against, or refresh, the committed baseline. check
// returns an error (non-zero exit) when any op regressed beyond tolerance.
func runGate(mode string, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench "+mode, flag.ContinueOnError)
	physRows := fs.Int("physrows", 1000000, "input rows for the physical operator suite (must match the baseline's)")

	baseline := fs.String("baseline", "BENCH_physical.json", "committed baseline path")
	out := fs.String("out", "", "also write the fresh measurements to this path (check only)")
	tol := fs.Float64("tolerance", 0.25, "allowed rows_per_sec regression fraction before the gate fails")
	exec := benchExecFlags(fs, "also run the out-of-core spill workloads at this budget, e.g. 32M (empty = skip; 'auto' = a quarter of the data)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var base []physbench.Result
	if mode == "check" {
		// Load the baseline before spending minutes measuring.
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			return fmt.Errorf("reading baseline: %w (run `bench update` to create it)", err)
		}
		if base, err = physbench.ParseJSON(raw); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", *baseline, err)
		}
	}

	results, err := measure(*physRows, exec.DOP())
	if err != nil {
		return err
	}
	if ooc, err := outOfCoreResults(exec.MemBudgetRaw(), *physRows); err != nil {
		return err
	} else {
		results = append(results, ooc...)
	}
	if srvRes, err := measureServer(*physRows); err != nil {
		return err
	} else {
		results = append(results, srvRes...)
	}
	if mode == "update" {
		if err := physbench.WriteJSON(*baseline, results); err != nil {
			return err
		}
		fmt.Fprint(stdout, physbench.Format(results))
		fmt.Fprintln(stdout, "updated", *baseline)
		return nil
	}
	if *out != "" {
		if err := physbench.WriteJSON(*out, results); err != nil {
			return err
		}
	}
	report, regressed, stats := physbench.Check(base, results, *tol)
	fmt.Fprint(stdout, report)
	if len(regressed) > 0 {
		return fmt.Errorf("benchmark regression gate failed:\n  %s",
			strings.Join(regressed, "\n  "))
	}
	if stats.AllSkipped() {
		// Every baseline entry was skipped (op renames, -physrows or -dop
		// drift): the gate compared nothing and a pass would be vacuous.
		return fmt.Errorf("benchmark regression gate compared nothing: all %d baseline entries skipped (rerun with the baseline's -physrows/-dop, or refresh it with `bench update`)",
			stats.Baseline)
	}
	fmt.Fprintf(stdout, "benchmark regression gate passed (tolerance %.0f%%, %d/%d entries compared)\n",
		*tol*100, stats.Compared, stats.Baseline)
	return nil
}

// runSummary implements `bench summary`: format a results file that an
// earlier run already wrote, without remeasuring anything. CI uses it to
// turn the check run's -out JSON into the human-readable fused-vs-typed
// artifact.
func runSummary(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench summary", flag.ContinueOnError)
	baseline := fs.String("baseline", "BENCH_physical.json", "results file to render")
	if err := fs.Parse(args); err != nil {
		return err
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		return fmt.Errorf("reading results: %w", err)
	}
	results, err := physbench.ParseJSON(raw)
	if err != nil {
		return fmt.Errorf("parsing results %s: %w", *baseline, err)
	}
	fmt.Fprint(stdout, physbench.Format(results))
	return nil
}
