// Command bench regenerates the paper's evaluation tables and figures
// (Section 11) plus the physical engine's operator microbenchmarks. Run
// with no arguments for everything, or name experiments:
//
//	bench fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 physical
//
// Flags scale the workloads; the defaults finish in a few minutes on one
// core. Output is the textual form of each figure's data series; the
// "physical" suite additionally writes machine-readable results (op, rows,
// ns/op, allocs/op) to -physout so the repo's perf trajectory is tracked in
// version control.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/physbench"
)

func main() {
	sf := flag.Float64("sf", 0.05, "PDBench scale factor for fig11-13 (1.0 = 60k lineitems)")
	quick := flag.Bool("quick", false, "shrink all workloads for a fast smoke run")
	physRows := flag.Int("physrows", 100000, "input rows for the physical operator suite")
	physOut := flag.String("physout", "BENCH_physical.json", "path for the physical suite's JSON results")
	flag.Parse()

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	all := len(want) == 0
	run := func(id string) bool { return all || want[id] }

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	if run("fig10") {
		cfg := experiments.DefaultFig10()
		if *quick {
			cfg.Rows, cfg.MaxOps, cfg.QueriesPerOp = 20, 5, 3
		}
		rep, _ := experiments.Fig10(cfg)
		fmt.Println(rep)
	}

	var pdRows []experiments.PDBenchRow
	if run("fig11") || run("fig12") || run("fig13") {
		cfg := experiments.DefaultPDBench()
		cfg.SF = *sf
		if *quick {
			cfg.SF = 0.01
			cfg.Uncertainties = []float64{0.02, 0.30}
		}
		rep, rows, err := experiments.Fig11(cfg)
		if err != nil {
			fail(err)
		}
		pdRows = rows
		if run("fig11") {
			fmt.Println(rep)
		}
	}
	if run("fig12") {
		fmt.Println(experiments.Fig12(pdRows))
	}
	if run("fig13") {
		fmt.Println(experiments.Fig13(pdRows))
	}

	if run("fig14") {
		cfg := experiments.DefaultPDBench()
		sfs := []float64{0.01, 0.05, 0.2}
		if *quick {
			sfs = []float64{0.01, 0.02}
		}
		rep, _, err := experiments.Fig14(sfs, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if run("fig15") {
		cfg := experiments.DefaultFig15()
		if *quick {
			cfg.TrialsPerK, cfg.Points = 3, 4
		}
		fmt.Println(experiments.Fig15(cfg))
	}

	if run("fig16") {
		fmt.Println(experiments.Fig16())
	}

	if run("fig17") {
		rows := 3000
		if *quick {
			rows = 500
		}
		rep, _, err := experiments.Fig17(rows, 0.05, 9)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if run("fig18") {
		cfg := experiments.DefaultFig18()
		if *quick {
			cfg.Rows = 400
			cfg.Uncertainties = []float64{0, 0.3, 0.5}
		}
		rep, _, err := experiments.Fig18(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if run("fig19") {
		cfg := experiments.DefaultFig19()
		if *quick {
			cfg.Rows = 200
			cfg.Alternatives = []int{2, 10}
		}
		rep, _, err := experiments.Fig19(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println(rep)
	}

	if run("fig20") {
		trials := 5
		if *quick {
			trials = 2
		}
		fmt.Println(experiments.Fig20(trials, 3))
	}

	if run("fig21") {
		trials := 5
		if *quick {
			trials = 2
		}
		fmt.Println(experiments.Fig21(trials, 3))
	}

	if run("physical") {
		rows := *physRows
		if *quick {
			rows = 10000
		}
		results, err := physbench.Suite(rows)
		if err != nil {
			fail(err)
		}
		fmt.Println("Physical operator suite (batch engine vs row-at-a-time reference)")
		fmt.Print(physbench.Format(results))
		if err := physbench.WriteJSON(*physOut, results); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *physOut)
	}
}
